"""Figure 12: symmetric tridiagonal eigenproblem on 8 cores.

Series: QR iteration, Bisection + inverse iteration, divide-and-conquer
(base case n=1... i.e. recursion to tiny blocks), "Cutoff 25" (the
hard-coded LAPACK dstevd hybrid: DC above n=25, QR below), and the
autotuned configuration.  Shape expectations from the paper: the
autotuned hybrid beats all three primitives and the hard-coded cutoff;
DC beats plain QR and Bisection at large n.
"""

import pytest
from harness import cached_config, fmt_row, write_report

from repro.apps import eigen as eig_app
from repro.autotuner import Evaluator, GeneticTuner
from repro.compiler import ChoiceConfig, Selector
from repro.runtime import MACHINES

SIZES = (32, 64, 128, 256, 512)


def flat(option):
    config = ChoiceConfig()
    config.set_choice(eig_app.EIG_SITE, Selector.static(option))
    return config


def dc_base1():
    """DC recursing to its internal tiny base (the paper's 'DC')."""
    config = ChoiceConfig()
    config.set_choice(eig_app.EIG_SITE, Selector.static(2))
    return config


def tune_eigen_xeon8():
    program = eig_app.build_program()
    evaluator = Evaluator(
        program, "Eig", eig_app.input_generator, MACHINES["xeon8"]
    )
    tuner = GeneticTuner(
        evaluator,
        min_size=8,
        max_size=256,
        population_size=6,
        parents=2,
        tunable_rounds=0,
        refine_passes=0,
        threshold_metric=eig_app.size_metric,
    )
    return tuner.tune().config


def build_rows():
    program = eig_app.build_program()
    evaluator = Evaluator(
        program, "Eig", eig_app.input_generator, MACHINES["xeon8"]
    )
    autotuned = cached_config("eigen_xeon8", tune_eigen_xeon8)
    series = {
        "QR": flat(0),
        "Bisection": flat(1),
        "DC": dc_base1(),
        "Cutoff25": eig_app.cutoff_config(25),
        "Autotuned": autotuned,
    }
    rows = []
    for size in SIZES:
        times = {
            name: evaluator.time(config, size)
            for name, config in series.items()
        }
        rows.append((size, times))
    return list(series), rows


def test_fig12_eigen(benchmark):
    columns, rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    widths = [6] + [14] * len(columns)
    lines = [
        "Figure 12: Eigenproblem on 8 cores (simulated time vs n)",
        fmt_row(["n"] + columns, widths),
    ]
    for size, times in rows:
        lines.append(
            fmt_row([size] + [f"{times[c]:.3g}" for c in columns], widths)
        )
    write_report("fig12_eigen", lines)

    _, large = rows[-1]
    # The autotuned hybrid beats every alternative at the large end
    # (paper: "runs faster than any of the three primary algorithms
    # alone [and] faster than ... Cutoff 25").
    for name in ("QR", "Bisection", "DC", "Cutoff25"):
        assert large["Autotuned"] <= large[name] * 1.05, f"loses to {name}"
    # Cutoff 25 beats naive DC-to-base-1 (the point of the cutoff).
    assert large["Cutoff25"] <= large["DC"] * 1.05
