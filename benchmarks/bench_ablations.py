"""Ablations of the design decisions called out in DESIGN.md.

1. **Bottom-up doubling vs flat search** (paper §3.3's tuning strategy):
   tune sort with the full bottom-up genetic loop vs a degenerate tuner
   that only ever trains at the final size; compare the quality of the
   resulting configuration.
2. **Sequential cutoff** (paper §3.2's dual code paths): the tuned sort
   configuration with its tuned cutoff vs forcing task spawning
   everywhere (cutoff ~ 0) vs never spawning (cutoff = infinity).
3. **Accuracy bins** (paper §4.1.4): serving a low-accuracy (1e3)
   Poisson request with the low-accuracy-tuned path vs over-solving with
   the 1e9 path — the reason the tuner keeps a *set* of algorithms.
"""

import random

import pytest
from harness import cached_config, fmt_row, write_report

from bench_fig14_sort import tune_sort_xeon8
from repro.apps import poisson as p_app
from repro.apps import sort as sort_app
from repro.autotuner import Evaluator, GeneticTuner
from repro.runtime import MACHINES, WorkStealingScheduler

MACHINE = MACHINES["xeon8"]


def ablate_bottom_up():
    program = sort_app.build_program()
    size = 16384
    evaluator = Evaluator(program, "Sort", sort_app.input_generator, MACHINE)
    bottom_up = cached_config("sort_xeon8", tune_sort_xeon8)

    flat_eval = Evaluator(program, "Sort", sort_app.input_generator, MACHINE)
    flat_tuner = GeneticTuner(
        flat_eval,
        min_size=size,
        max_size=size,  # one generation: no doubling, no smaller sizes
        population_size=6,
        parents=2,
        tunable_rounds=1,
        refine_passes=0,
        threshold_metric=sort_app.size_metric,
    )
    flat = flat_tuner.tune().config
    return {
        "bottom-up": evaluator.time(bottom_up, size),
        "flat (final size only)": evaluator.time(flat, size),
    }


def ablate_seq_cutoff():
    program = sort_app.build_program()
    size = 65536
    evaluator = Evaluator(program, "Sort", sort_app.input_generator, MACHINE)
    tuned = cached_config("sort_xeon8", tune_sort_xeon8)

    def with_cutoff(value):
        clone = type(tuned)(dict(tuned.choices), dict(tuned.tunables))
        clone.set_tunable("Sort.__seq_cutoff__", value)
        return clone

    return {
        "tuned cutoff": evaluator.time(tuned, size),
        "always spawn (cutoff 2)": evaluator.time(with_cutoff(2), size),
        "never spawn (cutoff inf)": evaluator.time(
            with_cutoff(2**31), size
        ),
    }


def ablate_accuracy_bins():
    program = p_app.build_program()
    tuned = cached_config(
        "poisson_xeon8",
        lambda: p_app.tune_accuracy(program, MACHINE, max_level=7)[0],
    )
    n = 65
    rng = random.Random(77)
    x0, b = p_app.input_generator(n, rng)
    scheduler = WorkStealingScheduler(MACHINE)

    def solve_with_bin(bin_index):
        solver = program.transform(p_app.poisson_name(bin_index))
        result = solver.run([x0, b], tuned)
        return scheduler.run(result.graph).makespan

    return {
        "1e3 request via 1e3-tuned path": solve_with_bin(1),
        "1e3 request via 1e9-tuned path": solve_with_bin(4),
    }


def test_ablations(benchmark):
    results = benchmark.pedantic(
        lambda: {
            "bottom-up tuning": ablate_bottom_up(),
            "sequential cutoff": ablate_seq_cutoff(),
            "accuracy bins": ablate_accuracy_bins(),
        },
        rounds=1,
        iterations=1,
    )
    lines = ["Ablations of DESIGN.md decisions (simulated time units)"]
    for section, entries in results.items():
        lines.append(f"-- {section}")
        for name, value in entries.items():
            lines.append(fmt_row([name, f"{value:.0f}"], [36, 14]))
    write_report("ablations", lines)

    cutoff = results["sequential cutoff"]
    assert cutoff["tuned cutoff"] <= cutoff["always spawn (cutoff 2)"]
    assert cutoff["tuned cutoff"] <= cutoff["never spawn (cutoff inf)"]

    bins = results["accuracy bins"]
    assert (
        bins["1e3 request via 1e3-tuned path"]
        < bins["1e3 request via 1e9-tuned path"]
    ), "low-accuracy requests must not pay the high-accuracy price"

    tuning = results["bottom-up tuning"]
    assert tuning["bottom-up"] <= tuning["flat (final size only)"] * 1.05
