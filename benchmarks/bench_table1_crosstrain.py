"""Table 1: slowdown when sort is trained on one machine and run on
another (plus §5.1's 1-core-config vs 8-core-config headline).

The sort benchmark is autotuned separately on each architecture profile
(Mobile 2-core, Xeon 1-way, Xeon 8-way, Niagara); every configuration is
then run on every machine at n = 100,000 and reported as a slowdown
relative to that machine's natively-trained configuration.

Shape expectations: the diagonal is 1.0 by construction; off-diagonal
entries are >= 1 with real slowdowns for mismatched architectures
(paper: 1.68x average, up to 2.35x for Niagara-config-on-Xeon; the
8-way-trained config beats the 1-way-trained config by 2.14x when both
run on 8 cores).
"""

import pytest
from harness import cached_config, fmt_row, write_report

from repro.apps import sort as sort_app
from repro.autotuner import Evaluator, GeneticTuner
from repro.runtime import MACHINES

TRAIN_MACHINES = ("mobile", "xeon1", "xeon8", "niagara")
RUN_SIZE = 100_000


def tune_on(machine_name):
    def tune():
        program = sort_app.build_program()
        evaluator = Evaluator(
            program, "Sort", sort_app.input_generator, MACHINES[machine_name]
        )
        tuner = GeneticTuner(
            evaluator,
            min_size=64,
            max_size=32768,
            population_size=6,
            parents=2,
            tunable_rounds=1,
            refine_passes=0,
            threshold_metric=sort_app.size_metric,
        )
        return tuner.tune().config

    return tune


def tuned_configs():
    return {
        name: cached_config(f"sort_{name}", tune_on(name))
        for name in TRAIN_MACHINES
    }


def build_table():
    program = sort_app.build_program()
    configs = tuned_configs()
    times = {}
    for run_on in TRAIN_MACHINES:
        evaluator = Evaluator(
            program, "Sort", sort_app.input_generator, MACHINES[run_on]
        )
        for trained_on in TRAIN_MACHINES:
            times[(run_on, trained_on)] = evaluator.time(
                configs[trained_on], RUN_SIZE
            )
    slowdowns = {
        key: value / times[(key[0], key[0])] for key, value in times.items()
    }
    return configs, slowdowns


def test_table1_crosstrain(benchmark):
    configs, slowdowns = benchmark.pedantic(build_table, rounds=1, iterations=1)
    widths = [10] + [10] * len(TRAIN_MACHINES)
    lines = [
        f"Table 1: sort cross-training slowdowns at n={RUN_SIZE} "
        "(rows = run on, columns = trained on)",
        fmt_row(["run \\ train"] + list(TRAIN_MACHINES), widths),
    ]
    for run_on in TRAIN_MACHINES:
        lines.append(
            fmt_row(
                [run_on]
                + [
                    f"{slowdowns[(run_on, t)]:.2f}x"
                    for t in TRAIN_MACHINES
                ],
                widths,
            )
        )
    off_diagonal = [
        s for (run, train), s in slowdowns.items() if run != train
    ]
    avg = sum(off_diagonal) / len(off_diagonal)
    headline = slowdowns[("xeon8", "xeon1")]
    lines.append(f"average off-diagonal slowdown: {avg:.2f}x (paper: 1.68x)")
    lines.append(
        f"Xeon-1-way config run on 8 cores: {headline:.2f}x slower than "
        "the natively tuned config (paper: 2.14x)"
    )
    for name in TRAIN_MACHINES:
        lines.append(f"  {name}: {sort_app.describe_config(configs[name])}")
    write_report("table1_crosstrain", lines)

    # Diagonal is 1.0 by construction.
    for (run, train), s in slowdowns.items():
        if run == train:
            assert s == pytest.approx(1.0)
    # Architecture mismatch costs performance on average and produces at
    # least one substantial slowdown (§5.2; the paper saw up to 2.35x).
    # Individual off-diagonal entries below 1.0 can occur when the
    # native genetic tuning run was itself suboptimal — reported, not
    # hidden.
    assert avg > 1.05
    assert max(off_diagonal) > 1.3
    # §5.1: training on 1 core and running on 8 leaves speed on the table.
    assert headline > 1.05
