"""Serve-daemon latency benchmark: warm registry hits vs fresh CLI runs.

The daemon's pitch is amortization: a fresh ``repro run`` process pays
interpreter start, import, parse, compile, and config handling on every
invocation, while a warm ``repro serve`` registry hit pays one HTTP/JSON
round trip into a resident :class:`CompiledTransform` with a
pre-digested config.  This benchmark measures both paths end to end —
subprocess wall time for the CLI, client round-trip time for the daemon
— on the same program, input, and machine profile, and checks the
responses are byte-identical.

Results go to ``benchmarks/results/serve_latency.txt`` (human) and
``benchmarks/results/BENCH_serve_latency.json`` (machine-readable; CI
uploads it as an artifact).

Script mode: ``python benchmarks/bench_serve_latency.py [--quick]``.
``--quick`` shrinks repeat counts and exits nonzero unless the warm
registry-hit p50 is >= 5x faster than a fresh ``repro run`` process —
the CI serve-latency gate (also the acceptance target for the full run).
"""

import argparse
import json
import os
import pathlib
import statistics
import subprocess
import sys
import tempfile
import time

import numpy as np

from harness import fmt_row, write_json, write_report

from repro.compiler import ChoiceConfig
from repro.serve import ANY_BUCKET, ServeApp, ServeClient, ServeDaemon

SRC_DIR = pathlib.Path(__file__).parent.parent / "src"

STENCIL = """
transform Blur
from A[n+2, m+2]
to B[n, m]
{
  to (B.cell(x, y) b)
  from (A.cell(x, y) nw, A.cell(x+1, y+1) c, A.cell(x+2, y+2) se) {
    b = c * 0.5 + nw * 0.25 + se * 0.25;
  }
}
"""

#: Input side length (the request is one (SIDE+2)^2 -> SIDE^2 stencil).
SIDE = 32

#: The acceptance target: warm registry-hit p50 >= 5x a fresh CLI run.
TARGET_SPEEDUP = 5.0


def _fresh_cli_times(source_path, input_path, output_path, repeats):
    """Wall-clock p50 of full ``repro run`` process invocations."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR)
    command = [
        sys.executable,
        "-m",
        "repro",
        "run",
        str(source_path),
        "-t",
        "Blur",
        "--input",
        str(input_path),
        "--output",
        str(output_path),
    ]
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        subprocess.run(command, env=env, check=True, capture_output=True)
        times.append(time.perf_counter() - start)
    return times


def _warm_serve_times(client, phash, inputs, repeats):
    """Round-trip p50 of ``/run`` requests against a warm registry."""
    payload_inputs = {"A": inputs.tolist()}
    # Warm-up: first request compiles nothing (that happened at
    # registration) but touches every cache; keep it out of the timing.
    first = client.run(phash, "Blur", payload_inputs)
    assert first["meta"]["registry_hit"] is True
    times = []
    response = first
    for _ in range(repeats):
        start = time.perf_counter()
        response = client.run(phash, "Blur", payload_inputs)
        times.append(time.perf_counter() - start)
    return times, response


def run_benchmark(quick: bool = False):
    rng = np.random.default_rng(11)
    fresh_repeats = 3 if quick else 7
    warm_repeats = 30 if quick else 200

    inputs = rng.uniform(-4.0, 4.0, (SIDE + 2, SIDE + 2))

    daemon = ServeDaemon(ServeApp(), port=0).start_background()
    try:
        client = ServeClient(port=daemon.port, timeout=60.0)
        phash = client.compile(STENCIL)["program"]
        daemon.app.publish_config(
            phash, daemon.app.machine, ANY_BUCKET, ChoiceConfig()
        )

        with tempfile.TemporaryDirectory(prefix="serve-bench-") as workdir:
            work = pathlib.Path(workdir)
            source_path = work / "blur.pbcc"
            source_path.write_text(STENCIL)
            input_path = work / "in.npy"
            np.save(input_path, inputs)
            output_path = work / "out.npy"

            fresh = _fresh_cli_times(
                source_path, input_path, output_path, fresh_repeats
            )
            warm, response = _warm_serve_times(
                client, phash, inputs, warm_repeats
            )

            direct_bytes = np.load(output_path).tobytes()
            served_bytes = np.asarray(
                response["outputs"]["B"], dtype=np.float64
            ).tobytes()
            if served_bytes != direct_bytes:
                raise AssertionError(
                    "served response differs from the direct CLI output"
                )
    finally:
        daemon.stop()

    fresh_p50 = statistics.median(fresh) * 1000.0
    warm_p50 = statistics.median(warm) * 1000.0
    payload = {
        "quick": quick,
        "input_shape": [SIDE + 2, SIDE + 2],
        "fresh_repeats": fresh_repeats,
        "warm_repeats": warm_repeats,
        "fresh_cli_p50_ms": fresh_p50,
        "warm_serve_p50_ms": warm_p50,
        "warm_serve_max_ms": max(warm) * 1000.0,
        "speedup": fresh_p50 / warm_p50,
        "target_speedup": TARGET_SPEEDUP,
        "byte_identical": True,
    }
    write_json("BENCH_serve_latency", payload)

    widths = [26, 12, 10]
    lines = [
        f"Serve latency: {SIDE}x{SIDE} stencil, one request per "
        f"invocation, byte-identical responses",
        fmt_row(["path", "p50 (ms)", "speedup"], widths),
        fmt_row(["fresh `repro run` process", f"{fresh_p50:.1f}", "1.0x"], widths),
        fmt_row(
            [
                "warm serve registry hit",
                f"{warm_p50:.1f}",
                f"{payload['speedup']:.1f}x",
            ],
            widths,
        ),
        f"(acceptance target: warm p50 >= {TARGET_SPEEDUP:.0f}x fresh; "
        "fresh pays interpreter start + parse + compile every call)",
    ]
    write_report("serve_latency", lines)
    return payload


def test_serve_latency(benchmark):
    payload = benchmark.pedantic(
        run_benchmark, args=(True,), rounds=1, iterations=1
    )
    assert payload["byte_identical"] is True
    assert payload["speedup"] >= TARGET_SPEEDUP


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="fewer repeats + enforce the CI gate (warm p50 >= "
        f"{TARGET_SPEEDUP:.0f}x fresh CLI)",
    )
    args = parser.parse_args(argv)
    payload = run_benchmark(quick=args.quick)
    if args.quick:
        speedup = payload["speedup"]
        if speedup < TARGET_SPEEDUP:
            print(
                f"FAIL: warm serve p50 is {speedup:.2f}x a fresh `repro "
                f"run` (need >= {TARGET_SPEEDUP:.0f}x)",
                file=sys.stderr,
            )
            return 1
        print(
            f"serve-latency OK: warm p50 {payload['warm_serve_p50_ms']:.1f}ms "
            f"vs fresh {payload['fresh_cli_p50_ms']:.1f}ms "
            f"({speedup:.1f}x, byte-identical)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
