"""Pytest fixtures for the benchmark harness (helpers live in harness.py)."""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR
