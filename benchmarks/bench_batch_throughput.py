"""Batch-engine throughput benchmark: stacked execution vs per-call runs.

Wall-clock requests/sec of :class:`repro.batch.BatchEngine` serving a
same-bucket elementwise workload (many small identical-shape requests)
at batch sizes 1 → 10^4, against the per-call baseline of running each
request through ``CompiledTransform.run`` individually.  This is the
many-small-problems grain the batch engine exists for: one stacked
NumPy sweep amortizes per-call planning, option selection, geometry
lookup, and task recording across the whole bucket.

Every batched run is checked bit-for-bit against the per-call outputs.
Results go to ``benchmarks/results/batch_throughput.txt`` (human) and
``benchmarks/results/BENCH_batch_throughput.json`` (machine-readable;
CI uploads it as an artifact).

Script mode: ``python benchmarks/bench_batch_throughput.py [--quick]``.
``--quick`` shrinks batch sizes/repeats and exits nonzero unless
batch=256 beats the per-call baseline — the CI throughput-smoke gate.
The full run additionally reports the acceptance target: >= 10x
requests/sec over per-call at batch=1024.
"""

import argparse
import gc
import statistics
import sys
import time

import numpy as np

from harness import fmt_row, write_json, write_report

from repro.batch import BatchEngine
from repro.compiler import compile_program

ELEMENTWISE = """
transform Elementwise
from A[n+1, m+1]
to B[n, m]
{
  to (B.cell(x, y) b)
  from (A.cell(x, y) a, A.cell(x+1, y+1) d) {
    b = a * 0.5 + d * 0.25 + 1.0;
  }
}
"""

#: Per-request problem size (each request is a (SIDE x SIDE) stencil).
SIDE = 24


def _requests(count: int, rng) -> list:
    return [
        {"A": rng.uniform(-4.0, 4.0, (SIDE + 1, SIDE + 1))}
        for _ in range(count)
    ]


def _per_call_rate(transform, requests, repeats: int):
    """Requests/sec running each request through transform.run."""
    times = []
    outputs = None
    for _ in range(repeats):
        gc.collect()  # keep cyclic-GC pauses out of the timed region
        start = time.perf_counter()
        outputs = [
            transform.run(inputs).output().tobytes() for inputs in requests
        ]
        times.append(time.perf_counter() - start)
    return len(requests) / statistics.median(times), outputs


def _batched_rate(transform, requests, repeats: int):
    """Requests/sec through one submit/gather cycle."""
    times = []
    outputs = None
    for _ in range(repeats):
        engine = BatchEngine()
        gc.collect()  # keep cyclic-GC pauses out of the timed region
        start = time.perf_counter()
        for inputs in requests:
            engine.submit(transform, inputs)
        results = engine.gather()
        times.append(time.perf_counter() - start)
        outputs = [result.output().tobytes() for result in results]
        assert all(result.stacked for result in results)
    return len(requests) / statistics.median(times), outputs


def run_benchmark(quick: bool = False):
    rng = np.random.default_rng(7)
    batch_sizes = [1, 16, 256, 1024] if quick else [1, 10, 100, 1000, 10000]
    repeats = 3 if quick else 5

    program = compile_program(ELEMENTWISE)
    transform = program.transform("Elementwise")

    rows = []
    for size in batch_sizes:
        requests = _requests(size, rng)
        per_call, baseline_outputs = _per_call_rate(
            transform, requests, repeats
        )
        batched, batched_outputs = _batched_rate(
            transform, requests, repeats
        )
        if batched_outputs != baseline_outputs:
            raise AssertionError(
                f"batch={size}: batched outputs differ from per-call runs"
            )
        rows.append(
            {
                "batch": size,
                "per_call_rps": per_call,
                "batched_rps": batched,
                "speedup": batched / per_call,
            }
        )

    payload = {
        "quick": quick,
        "request_shape": [SIDE + 1, SIDE + 1],
        "repeats": repeats,
        "batches": rows,
    }
    write_json("BENCH_batch_throughput", payload)

    widths = [10, 16, 16, 10]
    lines = [
        f"Batch throughput: requests/sec, {SIDE}x{SIDE} elementwise "
        f"stencil, one bucket",
        fmt_row(["batch", "per-call r/s", "batched r/s", "speedup"], widths),
    ]
    for row in rows:
        lines.append(
            fmt_row(
                [
                    str(row["batch"]),
                    f"{row['per_call_rps']:.0f}",
                    f"{row['batched_rps']:.0f}",
                    f"{row['speedup']:.1f}x",
                ],
                widths,
            )
        )
    lines.append(
        "(per-call = one CompiledTransform.run per request; batched = "
        "one submit/gather cycle, stacked sweeps)"
    )
    write_report("batch_throughput", lines)
    return payload


def test_batch_throughput(benchmark):
    payload = benchmark.pedantic(
        run_benchmark, args=(True,), rounds=1, iterations=1
    )
    by_batch = {row["batch"]: row for row in payload["batches"]}
    # Generous margins: CI boxes are noisy.  The acceptance target
    # (>= 10x at batch=1024) is asserted here too.
    assert by_batch[256]["speedup"] > 1.0
    assert by_batch[1024]["speedup"] >= 10.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small batch sizes + enforce the CI gate (batch=256 beats "
        "per-call; batch=1024 >= 10x)",
    )
    args = parser.parse_args(argv)
    payload = run_benchmark(quick=args.quick)
    if args.quick:
        by_batch = {row["batch"]: row for row in payload["batches"]}
        smoke = by_batch[256]["speedup"]
        target = by_batch[1024]["speedup"]
        if smoke <= 1.0:
            print(
                f"FAIL: batch=256 is {smoke:.2f}x the per-call baseline "
                f"(need > 1x)",
                file=sys.stderr,
            )
            return 1
        if target < 10.0:
            print(
                f"FAIL: batch=1024 is {target:.2f}x the per-call baseline "
                f"(acceptance target >= 10x)",
                file=sys.stderr,
            )
            return 1
        print(
            f"throughput-smoke OK: batch=256 {smoke:.1f}x, "
            f"batch=1024 {target:.1f}x per-call"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
