"""Aggregate every machine-readable benchmark result into one artifact.

Each perf-gated benchmark writes ``benchmarks/results/BENCH_<name>.json``
on its own; this script merges them into a single trajectory artifact,
``benchmarks/results/BENCH_report.json``, plus a human summary table
(``benchmarks/results/report.txt``).  CI runs it after the perf gates
and uploads the merged file, so one download tracks every gate's
headline numbers across the project's history.

The merge is schema-agnostic: every ``BENCH_*.json`` payload is embedded
verbatim under its benchmark name, and any payload exposing the common
``cases: [{case, speedup, ...}]`` shape additionally contributes rows to
the headline table.

Script mode: ``python benchmarks/bench_report.py``.  Exits nonzero when
no ``BENCH_*.json`` files exist (CI ordering bug), zero otherwise.
"""

import argparse
import json
import sys

from harness import RESULTS_DIR, fmt_row, write_json, write_report

#: The merged artifact itself — never an input to the merge.
REPORT_NAME = "BENCH_report"


def collect() -> dict:
    """All ``BENCH_*.json`` payloads keyed by benchmark name."""
    merged = {}
    for path in sorted(RESULTS_DIR.glob("BENCH_*.json")):
        if path.stem == REPORT_NAME:
            continue
        name = path.stem[len("BENCH_"):]
        try:
            merged[name] = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            merged[name] = {"error": f"unreadable payload: {exc}"}
    return merged


def headlines(merged: dict) -> list:
    """``(bench, case, speedup)`` rows from every case-shaped payload."""
    rows = []
    for bench, payload in sorted(merged.items()):
        for case in payload.get("cases", []) if isinstance(payload, dict) else []:
            if isinstance(case, dict) and "speedup" in case:
                rows.append(
                    {
                        "bench": bench,
                        "case": str(case.get("case", "?")),
                        "speedup": float(case["speedup"]),
                    }
                )
    return rows


def run_report() -> dict:
    merged = collect()
    rows = headlines(merged)
    payload = {
        "benchmarks": merged,
        "headlines": rows,
        "count": len(merged),
    }
    write_json(REPORT_NAME, payload)

    widths = [18, 18, 10]
    lines = [
        f"Benchmark trajectory: {len(merged)} machine-readable result(s) "
        "merged",
        fmt_row(["bench", "case", "speedup"], widths),
    ]
    for row in rows:
        lines.append(
            fmt_row(
                [row["bench"], row["case"], f"{row['speedup']:.2f}x"],
                widths,
            )
        )
    if not rows:
        lines.append("(no case-shaped payloads; see BENCH_report.json)")
    write_report("report", lines)
    return payload


def test_report(results_dir):
    payload = run_report()
    assert payload["count"] >= 0
    # The merged artifact embeds whatever gates already ran; it must
    # never swallow its own output on a re-run.
    assert REPORT_NAME[len("BENCH_"):] not in payload["benchmarks"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.parse_args(argv)
    payload = run_report()
    if payload["count"] == 0:
        print(
            "FAIL: no BENCH_*.json results to merge — run the perf "
            "gates first",
            file=sys.stderr,
        )
        return 1
    print(
        f"bench report OK: merged {payload['count']} result(s), "
        f"{len(payload['headlines'])} headline row(s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
