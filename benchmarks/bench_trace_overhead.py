"""Trace-layer overhead check.

Tracing must be pay-for-what-you-use: with no sink attached the
scheduler's hot loop pays one ``is None`` test per event site, so wall
time must stay within noise of the pre-observability baseline (the
acceptance bar for this subsystem is < 5% on bench_fig16_scalability).
This benchmark quantifies both modes on a large synthetic task graph and
asserts that tracing — enabled or not — never changes the schedule.
"""

import time

from harness import fmt_row, write_report

from repro.observe import TraceSink
from repro.runtime import MACHINES, TaskRecorder, WorkStealingScheduler

MACHINE = MACHINES["xeon8"]
TASKS = 4000
REPEATS = 5


def big_graph():
    rec = TaskRecorder()
    with rec.task(label="root"):
        prev = None
        for k in range(TASKS):
            deps = [prev] if prev is not None and k % 7 == 0 else []
            with rec.task(deps=deps, label=f"t{k}") as tid:
                rec.charge(20.0 + (k % 13))
            if k % 7 == 0:
                prev = tid
    return rec.graph()


def timed_run(graph, sink):
    scheduler = WorkStealingScheduler(MACHINE, seed=42, sink=sink)
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        if sink is not None:
            sink.clear()
        begin = time.perf_counter()
        result = scheduler.run(graph, workers=8)
        best = min(best, time.perf_counter() - begin)
    return result, best


def build_rows():
    graph = big_graph()
    bare_result, bare_time = timed_run(graph, None)
    sink = TraceSink()
    traced_result, traced_time = timed_run(graph, sink)
    metrics_sink = TraceSink(capture_events=False)
    metrics_result, metrics_time = timed_run(graph, metrics_sink)
    return {
        "graph": graph,
        "bare": (bare_result, bare_time),
        "traced": (traced_result, traced_time),
        "metrics": (metrics_result, metrics_time),
        "events": len(sink.events),
    }


def test_trace_overhead(benchmark):
    data = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    bare_result, bare_time = data["bare"]
    traced_result, traced_time = data["traced"]
    metrics_result, metrics_time = data["metrics"]

    widths = [24, 12, 12, 14]
    lines = [
        f"Trace overhead: {len(data['graph'])} tasks on xeon8, "
        f"best of {REPEATS} runs",
        fmt_row(["mode", "wall (ms)", "vs bare", "events"], widths),
        fmt_row(
            ["disabled (sink=None)", f"{bare_time * 1e3:.1f}", "1.00x", "0"],
            widths,
        ),
        fmt_row(
            [
                "metrics only",
                f"{metrics_time * 1e3:.1f}",
                f"{metrics_time / bare_time:.2f}x",
                "0",
            ],
            widths,
        ),
        fmt_row(
            [
                "full event capture",
                f"{traced_time * 1e3:.1f}",
                f"{traced_time / bare_time:.2f}x",
                str(data["events"]),
            ],
            widths,
        ),
    ]
    write_report("trace_overhead", lines)

    # Tracing observes the schedule; it must never change it.
    assert traced_result == bare_result
    assert metrics_result == bare_result
    # Full capture produced a real event stream for the whole graph.
    assert data["events"] >= 2 * len(data["graph"])
