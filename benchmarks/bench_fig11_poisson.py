"""Figure 11: solving Poisson's equation to accuracy 10^9 on 8 cores.

Series: Direct (banded Cholesky), iterated Jacobi, iterated Red-Black
SOR with the optimal weight, MULTIGRID-SIMPLE (plain recursive V-cycles,
paper Figure 7), and the accuracy-autotuned hybrid (§4.1.4).  Each
iterative baseline runs until the true-error accuracy (measured against
the direct solution) reaches 10^9.

Shape expectations: direct wins only on tiny grids and blows up
(O(n^4)); Jacobi is worst at scale (O(n^2) sweeps); SOR sits in between
(O(n) sweeps); multigrid and the autotuned hybrid win at scale with the
autotuned algorithm at least tying every baseline at every size.

Grid sizes are scaled down from the paper (to 129 instead of ~2000):
our substrate executes real numerics in Python, and the asymptotic
separations are already decades wide at 129.
"""

import pytest
from harness import cached_config, fmt_row, write_report

from repro.apps import poisson as p_app
from repro.compiler import ChoiceConfig, Selector
from repro.runtime import MACHINES, TaskRecorder, WorkStealingScheduler

GRIDS = (5, 9, 17, 33, 65, 129)
TARGET = 1e9
MACHINE = MACHINES["xeon8"]


def fan_charge(recorder, total, chunks=8):
    share = total / chunks
    for _ in range(chunks):
        with recorder.task():
            recorder.charge(share)


def simulate(recorder):
    return WorkStealingScheduler(MACHINE).run(recorder.graph()).makespan


def jacobi_series(x0, b, reference):
    """Iterate Jacobi sweeps until true-error accuracy 1e9 (the paper's
    baselines run "until an accuracy of at least 1e9 is achieved",
    measured with the training solution available), pricing each sweep
    as a data-parallel fan (batched to keep the simulated graph small)."""
    n = b.shape[0]
    err0 = p_app.rms((x0 - reference)[1:-1, 1:-1])
    x = x0
    sweeps = 0
    recorder = TaskRecorder()
    with recorder.task(label="jacobi"):
        batch = 0
        while sweeps < p_app.MAX_SWEEPS:
            x = p_app.jacobi_sweep(x, b)
            sweeps += 1
            batch += 1
            if batch >= 64 or sweeps < 8:
                fan_charge(recorder, batch * p_app.JACOBI_SWEEP_COST * n * n)
                batch = 0
            err = p_app.rms((x - reference)[1:-1, 1:-1])
            if err == 0.0 or err0 / err >= TARGET:
                break
        if batch:
            fan_charge(recorder, batch * p_app.JACOBI_SWEEP_COST * n * n)
    return simulate(recorder)


def sor_series(x0, b, reference):
    """Iterated Red-Black SOR with the optimal weight, to accuracy 1e9
    (same oracle criterion as the other baselines)."""
    n = b.shape[0]
    omega = p_app.optimal_sor_weight(n)
    err0 = p_app.rms((x0 - reference)[1:-1, 1:-1])
    x = x0.copy()
    sweeps = 0
    recorder = TaskRecorder()
    with recorder.task(label="sor"):
        batch = 0
        while sweeps < p_app.MAX_SWEEPS:
            p_app.sor_sweep(x, b, omega)
            sweeps += 1
            batch += 1
            if batch >= 64 or sweeps < 8:
                fan_charge(recorder, batch * p_app.SOR_SWEEP_COST * n * n)
                batch = 0
            err = p_app.rms((x - reference)[1:-1, 1:-1])
            if err == 0.0 or err0 / err >= TARGET:
                break
        if batch:
            fan_charge(recorder, batch * p_app.SOR_SWEEP_COST * n * n)
    return simulate(recorder)


def multigrid_simple_series(x0, b, reference):
    """Plain recursive V-cycles (paper Figure 7), priced per stage,
    iterated to true-error accuracy 1e9."""
    n = b.shape[0]
    err0 = p_app.rms((x0 - reference)[1:-1, 1:-1])
    recorder = TaskRecorder()

    def vcycle(x, rhs, recorder):
        size = rhs.shape[0]
        if size <= 3:
            recorder.charge(p_app.direct_work(size))
            return p_app.direct_solve(rhs)
        p_app.sor_sweep(x, rhs, 1.15)
        fan_charge(recorder, p_app.SOR_SWEEP_COST * size * size)
        r = p_app.residual(x, rhs)
        coarse_rhs = 4.0 * p_app.restrict_full_weighting(r)
        fan_charge(recorder, 2 * p_app.STENCIL_COST * size * size)
        m = coarse_rhs.shape[0]
        import numpy as np

        correction = vcycle(np.zeros((m, m)), coarse_rhs, recorder)
        x = x + p_app.interpolate(correction, size)
        fan_charge(recorder, p_app.STENCIL_COST * size * size)
        p_app.sor_sweep(x, rhs, 1.15)
        fan_charge(recorder, p_app.SOR_SWEEP_COST * size * size)
        return x

    x = x0.copy()
    with recorder.task(label="mg-simple"):
        for _ in range(200):
            x = vcycle(x, b, recorder)
            err = p_app.rms((x - reference)[1:-1, 1:-1])
            if err == 0.0 or err0 / err >= TARGET:
                break
    return simulate(recorder)


def transform_series(program, config, x0, b):
    solver = program.transform(p_app.poisson_name(4))  # the 1e9 bin
    result = solver.run([x0, b], config)
    return WorkStealingScheduler(MACHINE).run(result.graph).makespan


def build_rows():
    program = p_app.build_program()
    autotuned = cached_config(
        "poisson_xeon8",
        lambda: p_app.tune_accuracy(program, MACHINE, max_level=7)[0],
    )
    direct_cfg = ChoiceConfig()
    direct_cfg.set_choice(p_app.poisson_site(4), Selector.static(0))

    import random

    rows = []
    for n in GRIDS:
        rng = random.Random(1000 + n)
        x0, b = p_app.input_generator(n, rng)
        reference = p_app.true_solution(b)
        result = program.transform(p_app.poisson_name(4)).run(
            [x0, b], autotuned
        )
        # The tuned iteration counts must generalize to this fresh
        # instance (trained on same-distribution data).
        achieved = p_app.measure_accuracy(x0, result.output("Y"), b)
        assert achieved >= TARGET * 0.1, f"tuned accuracy {achieved:.2e} at n={n}"
        autotuned_time = WorkStealingScheduler(MACHINE).run(result.graph).makespan
        times = {
            "Direct": transform_series(program, direct_cfg, x0, b),
            "Jacobi": jacobi_series(x0.copy(), b, reference),
            "SOR": sor_series(x0, b, reference),
            "Multigrid": multigrid_simple_series(x0, b, reference),
            "Autotuned": autotuned_time,
        }
        rows.append((n, times))
    return ["Direct", "Jacobi", "SOR", "Multigrid", "Autotuned"], rows


def test_fig11_poisson(benchmark):
    columns, rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    widths = [6] + [14] * len(columns)
    lines = [
        "Figure 11: Poisson to accuracy 1e9 on 8 cores "
        "(simulated time vs grid size)",
        fmt_row(["n"] + columns, widths),
    ]
    for n, times in rows:
        lines.append(
            fmt_row([n] + [f"{times[c]:.3g}" for c in columns], widths)
        )
    write_report("fig11_poisson", lines)

    times = dict(rows)
    # Direct wins tiny grids; loses badly at the large end (O(n^4)).
    assert times[5]["Direct"] <= min(times[5][c] for c in columns)
    assert times[129]["Direct"] > times[129]["Autotuned"]
    # Jacobi is the worst iterative method at scale.
    assert times[129]["Jacobi"] > times[129]["SOR"] > times[129]["Autotuned"]
    # The autotuned hybrid at least ties every series at every size.
    for n, series in rows:
        best = min(series[c] for c in columns if c != "Autotuned")
        assert series["Autotuned"] <= best * 1.25, f"autotuned loses at n={n}"
