"""Shared infrastructure for the benchmark harness.

Each ``bench_*.py`` regenerates one table or figure of the paper's
evaluation section (see DESIGN.md's experiment index).  Conventions:

* heavy experiments run once via ``benchmark.pedantic(fn, rounds=1,
  iterations=1)`` so pytest-benchmark records the harness wall time
  while the experiment itself is not repeated;
* every experiment prints its paper-style rows and also writes them to
  ``benchmarks/results/<name>.txt`` (EXPERIMENTS.md quotes these files);
* tuned configurations are cached as JSON under
  ``benchmarks/results/configs/`` — delete a file (or set
  ``REPRO_RETUNE=1``) to force retuning.
"""

import json
import os
import pathlib


from repro.compiler import ChoiceConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
CONFIG_DIR = RESULTS_DIR / "configs"



def write_report(name: str, lines) -> str:
    """Print report lines and persist them under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    text = "\n".join(str(line) for line in lines) + "\n"
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text, encoding="utf-8")
    print(f"\n=== {name} ===")
    print(text)
    return str(path)


def write_json(name: str, payload) -> str:
    """Persist a machine-readable result under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return str(path)


def cached_config(name: str, factory) -> ChoiceConfig:
    """Load a tuned config from disk, or tune and cache it."""
    CONFIG_DIR.mkdir(parents=True, exist_ok=True)
    path = CONFIG_DIR / f"{name}.json"
    if path.exists() and not os.environ.get("REPRO_RETUNE"):
        return ChoiceConfig.load(str(path))
    config = factory()
    config.save(str(path))
    return config


def fmt_row(cells, widths) -> str:
    return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))
