"""Parallel candidate evaluation: wall-clock speedup and determinism.

Tuning runs are embarrassingly parallel across candidates; the
``ParallelEvaluator`` fans each generation's population and each n-ary
probe set over a process pool.  This benchmark tunes Sort with ``jobs``
in {1, 2, 4}, records the wall-clock speedup, and asserts the parallel
runs reproduce the serial result byte-for-byte (the determinism contract
of ISSUE 2).  The acceptance bar — speedup > 1.5x at ``--jobs 4`` —
applies on a host with >= 4 physical cores; on smaller hosts the report
still records the measured ratio alongside the visible core count.
"""

import os
import time

from harness import fmt_row, write_report

from repro.apps import sort as sort_app
from repro.autotuner import GeneticTuner
from repro.autotuner.parallel import EvaluatorSpec, ParallelEvaluator

SPEC = EvaluatorSpec.make("repro.apps.sort:make_evaluator", "xeon8")
JOBS = (1, 2, 4)
MIN_SIZE = 64
MAX_SIZE = 2048


def tune_with_jobs(jobs: int):
    evaluator = ParallelEvaluator.from_spec(SPEC, jobs=jobs)
    tuner = GeneticTuner(
        evaluator,
        min_size=MIN_SIZE,
        max_size=MAX_SIZE,
        population_size=6,
        tunable_rounds=1,
        refine_passes=0,
        threshold_metric=sort_app.size_metric,
    )
    begin = time.perf_counter()
    try:
        result = tuner.tune()
    finally:
        evaluator.close()
    return result, time.perf_counter() - begin, evaluator.evaluations


def build_rows():
    return {jobs: tune_with_jobs(jobs) for jobs in JOBS}


def test_parallel_tune_speedup(benchmark):
    data = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    serial_result, serial_time, serial_evals = data[1]
    cores = os.cpu_count() or 1

    widths = [8, 12, 10, 13]
    lines = [
        f"Parallel tuning: Sort on xeon8, sizes {MIN_SIZE}..{MAX_SIZE}, "
        f"host cores: {cores}",
        fmt_row(["jobs", "wall (s)", "speedup", "evaluations"], widths),
    ]
    for jobs in JOBS:
        result, elapsed, evals = data[jobs]
        lines.append(
            fmt_row(
                [
                    jobs,
                    f"{elapsed:.2f}",
                    f"{serial_time / elapsed:.2f}x",
                    evals,
                ],
                widths,
            )
        )
    four_way = serial_time / data[4][1]
    lines.append(
        f"acceptance (>= 4-core host): jobs=4 speedup {four_way:.2f}x "
        f"(bar: > 1.5x)"
    )
    write_report("parallel_tune", lines)

    # Determinism: identical tuned config, best time, history, and
    # fresh-evaluation counts for every worker count.
    for jobs in JOBS[1:]:
        result, _, evals = data[jobs]
        assert result.config.to_json() == serial_result.config.to_json()
        assert result.best_time == serial_result.best_time
        assert [
            (log.size, log.best_time, log.best_lineage, log.evaluated)
            for log in result.history
        ] == [
            (log.size, log.best_time, log.best_lineage, log.evaluated)
            for log in serial_result.history
        ]
        assert evals == serial_evals
    # The speedup bar is only meaningful with the cores to back it.
    if cores >= 4:
        assert four_way > 1.5
