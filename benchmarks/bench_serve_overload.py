"""Serve-daemon overload benchmark: a burst at 4x the concurrency limit.

The admission-control pitch is that overload degrades *explicitly*: a
burst beyond capacity gets immediate structured sheds (429/503 with a
machine-readable reason and a ``Retry-After`` hint) instead of silent
queueing, and a client that honors the hint recovers to byte-identical
responses once the burst passes.  This benchmark fires a burst of
``4 * max_concurrency`` concurrent ``/run`` requests at a small daemon
whose handlers are artificially slowed (injected ``slow-handler``, so
the burst genuinely overlaps), twice:

* **shed phase** — no client retries: every request must resolve to
  either 200 or a structured shed.  Zero 500s, zero hangs, at least one
  shed (the burst must actually overload), every shed carrying a
  ``Retry-After``.
* **retry phase** — retrying clients honoring ``Retry-After``: every
  request must land, and every response must be byte-identical to the
  uncontended response for the same payload.

Results go to ``benchmarks/results/serve_overload.txt`` (human) and
``benchmarks/results/BENCH_serve_overload.json`` (machine-readable; CI
uploads it as an artifact).

Script mode: ``python benchmarks/bench_serve_overload.py [--quick]``.
``--quick`` exits nonzero unless the overload gate holds — the CI
overload-burst gate.
"""

import argparse
import json
import sys
import threading
import time

from harness import fmt_row, write_json, write_report

from repro.faults import FaultInjector
from repro.observe.trace import ThreadSafeSink
from repro.serve import (
    ResilienceConfig,
    RetryPolicy,
    ServeApp,
    ServeClient,
    ServeClientError,
    ServeDaemon,
)

SCALE = """
transform Scale
from A[n, m]
to B[n, m]
{
  to (B.cell(x, y) b) from (A.cell(x, y) a) { b = a * 2.0 + 1.0; }
}
"""

#: The small daemon under test.
MAX_CONCURRENCY = 4

#: Burst size: 4x the concurrency limit (the acceptance condition).
BURST = 4 * MAX_CONCURRENCY

#: Statuses a burst outcome may legally have.
OK_STATUSES = frozenset({200})
SHED_STATUSES = frozenset({429, 503})


def _burst(daemon, phash, retry, client_sink=None, join_timeout=60.0):
    """Fire BURST concurrent /run requests; returns (outcomes, hung).

    Outcome per request index: ``("ok", canonical_bytes)`` or
    ``("shed", status, reason, retry_after)`` or ``("bad", detail)``.
    """
    outcomes = [None] * BURST

    def fire(index):
        client = ServeClient(
            port=daemon.port, timeout=30.0, retry=retry, sink=client_sink
        )
        try:
            response = client.run(
                phash,
                "Scale",
                {"A": [[float(index)]]},
                rid=f"b{index}",
            )
            outcomes[index] = (
                "ok", json.dumps(response, sort_keys=True)
            )
        except ServeClientError as exc:
            if exc.status in SHED_STATUSES:
                outcomes[index] = (
                    "shed", exc.status, exc.reason, exc.retry_after
                )
            else:
                outcomes[index] = ("bad", f"status {exc.status}: {exc}")
        except Exception as exc:
            outcomes[index] = ("bad", f"{type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=fire, args=(i,), name=f"burst-{i}")
        for i in range(BURST)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=join_timeout)
    hung = [t.name for t in threads if t.is_alive()]
    elapsed = time.perf_counter() - started
    return outcomes, hung, elapsed


def run_benchmark(quick: bool = False):
    del quick  # the burst is already CI-sized; the gate is identical
    injector = FaultInjector.parse("slow-handler:1,hang=0.05")
    resilience = ResilienceConfig(
        max_concurrency=MAX_CONCURRENCY,
        max_queue=MAX_CONCURRENCY,
        queue_timeout_s=10.0,
        retry_after_s=0.02,
    )
    sink = ThreadSafeSink()
    app = ServeApp(sink=sink, resilience=resilience, injector=injector)
    daemon = ServeDaemon(app, port=0).start_background()
    violations = []
    try:
        quiet = ServeClient(port=daemon.port, timeout=30.0)
        phash = quiet.compile(SCALE)["program"]
        # Uncontended canonical bytes per payload (no rid: unslowed).
        expected = [
            json.dumps(
                quiet.run(phash, "Scale", {"A": [[float(i)]]}),
                sort_keys=True,
            )
            for i in range(BURST)
        ]

        # Phase 1: burst with no retries — explicit sheds, nothing else.
        shed_outcomes, hung, shed_elapsed = _burst(
            daemon, phash, RetryPolicy(retries=0)
        )
        oks = sheds = 0
        for index, outcome in enumerate(shed_outcomes):
            if outcome is None:
                violations.append(f"shed-phase {index}: no outcome")
            elif outcome[0] == "ok":
                oks += 1
                if outcome[1] != expected[index]:
                    violations.append(
                        f"shed-phase {index}: bytes diverged under load"
                    )
            elif outcome[0] == "shed":
                sheds += 1
                _tag, _status, reason, retry_after = outcome
                if reason not in ("capacity", "queue_timeout"):
                    violations.append(
                        f"shed-phase {index}: bad reason {reason!r}"
                    )
                if retry_after is None:
                    violations.append(
                        f"shed-phase {index}: shed without Retry-After"
                    )
            else:
                violations.append(f"shed-phase {index}: {outcome[1]}")
        if hung:
            violations.append(f"shed-phase hung threads: {hung}")
        if sheds == 0:
            violations.append(
                "shed-phase: burst never shed — overload not exercised"
            )

        # Phase 2: same burst, retrying clients — total recovery to
        # byte-identical responses.
        client_sink = ThreadSafeSink()
        retry_outcomes, hung2, retry_elapsed = _burst(
            daemon,
            phash,
            RetryPolicy(retries=8, backoff_s=0.02, max_backoff_s=0.5),
            client_sink=client_sink,
        )
        recovered = 0
        for index, outcome in enumerate(retry_outcomes):
            if outcome is None:
                violations.append(f"retry-phase {index}: no outcome")
            elif outcome[0] == "ok":
                if outcome[1] == expected[index]:
                    recovered += 1
                else:
                    violations.append(
                        f"retry-phase {index}: bytes diverged after retry"
                    )
            else:
                violations.append(f"retry-phase {index}: {outcome[1:]}")
        if hung2:
            violations.append(f"retry-phase hung threads: {hung2}")
    finally:
        daemon.stop()

    counters = dict(sink.counters)
    payload = {
        "burst": BURST,
        "max_concurrency": MAX_CONCURRENCY,
        "shed_phase": {
            "ok": oks,
            "shed": sheds,
            "elapsed_s": shed_elapsed,
        },
        "retry_phase": {
            "recovered": recovered,
            "elapsed_s": retry_elapsed,
            "retry_attempts": dict(client_sink.counters).get(
                "serve.retry.attempts", 0
            ),
        },
        "server_sheds": {
            name: value
            for name, value in sorted(counters.items())
            if name.startswith("serve.shed.")
        },
        "violations": violations,
        "ok": not violations,
    }
    write_json("BENCH_serve_overload", payload)

    widths = [30, 10, 10, 12]
    lines = [
        f"Serve overload: burst of {BURST} concurrent /run at "
        f"max_concurrency={MAX_CONCURRENCY} (slow-handler injected)",
        fmt_row(["phase", "ok", "shed", "elapsed"], widths),
        fmt_row(
            ["no retries (shed phase)", str(oks), str(sheds),
             f"{shed_elapsed:.2f}s"],
            widths,
        ),
        fmt_row(
            ["retries honor Retry-After", str(recovered), "0",
             f"{retry_elapsed:.2f}s"],
            widths,
        ),
        "(gate: zero 500s, zero hangs, every shed structured with "
        "Retry-After, retry phase recovers all requests byte-identically)",
    ]
    if violations:
        lines.append(f"VIOLATIONS: {violations}")
    write_report("serve_overload", lines)
    return payload


def test_serve_overload(benchmark):
    payload = benchmark.pedantic(
        run_benchmark, args=(True,), rounds=1, iterations=1
    )
    assert payload["ok"], payload["violations"]
    assert payload["retry_phase"]["recovered"] == BURST


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="enforce the CI overload gate (zero hangs / zero 500s / "
        "shed-then-retry byte parity)",
    )
    args = parser.parse_args(argv)
    payload = run_benchmark(quick=args.quick)
    if not payload["ok"]:
        print(
            f"FAIL: overload gate violated: {payload['violations']}",
            file=sys.stderr,
        )
        return 1
    print(
        f"serve-overload OK: burst {BURST}, "
        f"{payload['shed_phase']['shed']} structured sheds, "
        f"{payload['retry_phase']['recovered']}/{BURST} recovered "
        "byte-identically on retry"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
