"""Rule-kernel microbenchmark: interpreter vs closure vs vector leaves.

Wall-clock (not simulated) timing of the three leaf execution paths
(:mod:`repro.engine_fast`) on three rule-body shapes:

* ``elementwise`` — a 2-D stencil-style elementwise rule (affine offset
  cell reads, straight-line arithmetic): vector-eligible, the headline
  number.
* ``rollingsum`` — the paper's Figure 3 running example under its
  Theta(n^2) data-parallel choice: a region reduction, so the vector
  path demotes to the closure (reported as such).
* ``matmul_kernel`` — the inner product-cube + reduction decomposition
  of matrix multiply: a 3-D vector-eligible rule feeding a region
  reduction.

Every timed run is also checked bit-for-bit against the interpreter's
output.  Results go to ``benchmarks/results/rule_exec.txt`` (human) and
``benchmarks/results/BENCH_rule_exec.json`` (machine-readable; CI
uploads it as an artifact).

Script mode: ``python benchmarks/bench_rule_exec.py [--quick]``.
``--quick`` shrinks sizes/repeats and exits nonzero unless the closure
path is at least 2x the interpreter on the elementwise kernel — the CI
perf-smoke gate.
"""

import argparse
import statistics
import sys
import time

import numpy as np

from harness import fmt_row, write_json, write_report

from repro.compiler import ChoiceConfig, Selector, compile_program

ELEMENTWISE = """
transform Elementwise
from A[n+1, m+1]
to B[n, m]
{
  to (B.cell(x, y) b)
  from (A.cell(x, y) a, A.cell(x+1, y+1) d) {
    b = a * 0.5 + d * 0.25 + 1.0;
  }
}
"""

ROLLINGSUM = """
transform RollingSum
from A[n]
to B[n]
{
  to (B.cell(i) b) from (A.region(0, i+1) in) { b = sum(in); }
  to (B.cell(i) b) from (A.cell(i) a, B.cell(i-1) leftSum) { b = a + leftSum; }
}
"""

MATMUL_KERNEL = """
transform MatMulKernel
from A[p, n], B[m, p]
through C[m, n, p]
to AB[m, n]
{
  to (C.cell(x, y, k) c) from (A.cell(k, y) a, B.cell(x, k) b) {
    c = a * b;
  }
  to (AB.cell(x, y) o) from (C.region(x, y, 0, x+1, y+1, p) prods) {
    o = sum(prods);
  }
}
"""

LEAF_NAMES = ("interp", "closure", "vector")


def _leaf_config(transform: str, leaf: int, choices=None) -> ChoiceConfig:
    config = ChoiceConfig()
    config.set_tunable(f"{transform}.__leaf_path__", leaf)
    for site, option in (choices or {}).items():
        config.set_choice(site, Selector.static(option))
    return config


def _time_run(transform, inputs, config, repeats: int):
    times = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = transform.run(inputs, config)
        times.append(time.perf_counter() - start)
    return statistics.median(times), result


def _bench_case(name, transform, inputs, repeats, choices=None):
    """Time all three leaf paths; verify bit-for-bit parity."""
    row = {"kernel": name, "times": {}}
    baseline = None
    for leaf, leaf_name in enumerate(LEAF_NAMES):
        config = _leaf_config(transform.name, leaf, choices)
        seconds, result = _time_run(transform, inputs, config, repeats)
        outputs = {
            out: matrix.data.tobytes()
            for out, matrix in result.outputs.items()
        }
        if baseline is None:
            baseline = outputs
        elif outputs != baseline:
            raise AssertionError(
                f"{name}: {leaf_name} output differs from interpreter"
            )
        row["times"][leaf_name] = seconds
    interp = row["times"]["interp"]
    row["speedup"] = {
        leaf_name: interp / row["times"][leaf_name]
        for leaf_name in LEAF_NAMES
    }
    return row


def run_benchmark(quick: bool = False):
    rng = np.random.default_rng(7)
    ew_n = 48 if quick else 160
    rs_n = 96 if quick else 256
    mm_n = 10 if quick else 24
    repeats = 3 if quick else 5

    rows = []

    program = compile_program(ELEMENTWISE)
    transform = program.transform("Elementwise")
    inputs = {"A": rng.uniform(-4.0, 4.0, (ew_n + 1, ew_n + 1))}
    rows.append(_bench_case("elementwise", transform, inputs, repeats))

    program = compile_program(ROLLINGSUM)
    transform = program.transform("RollingSum")
    inputs = {"A": rng.uniform(-1.0, 1.0, rs_n)}
    rows.append(
        _bench_case(
            "rollingsum",
            transform,
            inputs,
            repeats,
            choices={"RollingSum.B.0": 0, "RollingSum.B.1": 0},
        )
    )

    program = compile_program(MATMUL_KERNEL)
    transform = program.transform("MatMulKernel")
    inputs = {
        "A": rng.uniform(-1.0, 1.0, (mm_n, mm_n)),
        "B": rng.uniform(-1.0, 1.0, (mm_n, mm_n)),
    }
    rows.append(_bench_case("matmul_kernel", transform, inputs, repeats))

    payload = {
        "quick": quick,
        "sizes": {
            "elementwise": ew_n,
            "rollingsum": rs_n,
            "matmul_kernel": mm_n,
        },
        "repeats": repeats,
        "kernels": rows,
    }
    write_json("BENCH_rule_exec", payload)

    widths = [14, 12, 12, 12, 10, 10]
    lines = [
        "Rule-kernel leaf paths: median wall-clock seconds per run",
        fmt_row(
            ["kernel", "interp", "closure", "vector", "clo x", "vec x"],
            widths,
        ),
    ]
    for row in rows:
        t = row["times"]
        s = row["speedup"]
        lines.append(
            fmt_row(
                [
                    row["kernel"],
                    f"{t['interp']:.4f}",
                    f"{t['closure']:.4f}",
                    f"{t['vector']:.4f}",
                    f"{s['closure']:.1f}x",
                    f"{s['vector']:.1f}x",
                ],
                widths,
            )
        )
    lines.append(
        "(rollingsum's vector column demotes to the closure path: its "
        "body is a region reduction)"
    )
    write_report("rule_exec", lines)
    return payload


def test_rule_exec(benchmark):
    payload = benchmark.pedantic(
        run_benchmark, args=(True,), rounds=1, iterations=1
    )
    by_kernel = {row["kernel"]: row for row in payload["kernels"]}
    # The lowered paths must not lose to the interpreter on the kernels
    # they target (generous margins: CI boxes are noisy).
    assert by_kernel["elementwise"]["speedup"]["closure"] > 1.5
    assert by_kernel["elementwise"]["speedup"]["vector"] > 2.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes + enforce the CI gate (closure >= 2x interp "
        "on the elementwise kernel)",
    )
    args = parser.parse_args(argv)
    payload = run_benchmark(quick=args.quick)
    if args.quick:
        by_kernel = {row["kernel"]: row for row in payload["kernels"]}
        closure_speedup = by_kernel["elementwise"]["speedup"]["closure"]
        if closure_speedup < 2.0:
            print(
                f"FAIL: closure path is {closure_speedup:.2f}x the "
                f"interpreter on the elementwise kernel (need >= 2x)",
                file=sys.stderr,
            )
            return 1
        print(f"perf-smoke OK: closure {closure_speedup:.2f}x interpreter")
    return 0


if __name__ == "__main__":
    sys.exit(main())
