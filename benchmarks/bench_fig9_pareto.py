"""Figure 9(a): the accuracy/time candidate cloud and its optimal set.

The paper's Figure 9(a) is a schematic: candidate multigrid algorithms
plotted by compute time and achieved accuracy, with the Pareto-optimal
set marked and, per discrete accuracy level, the fastest candidate at or
above the level (the algorithms PetaBricks remembers).  We generate the
*actual* cloud for one grid size by enumerating candidate Poisson
configurations — direct, SOR with varying sweep counts, and
Multigrid_j / FMG_j with varying cycle counts — and compute the front.

Shape expectations: the front is non-trivial (no single candidate
dominates), every accuracy bin is reachable, and each bin's chosen
candidate is strictly faster than over-solving with the most accurate
candidate.
"""

import random

import numpy as np
import pytest
from harness import fmt_row, write_report

from repro.apps import poisson as p_app
from repro.autotuner import fastest_per_bin, pareto_front
from repro.autotuner.accuracy import PAPER_ACCURACY_BINS, Scored
from repro.compiler import ChoiceConfig, Selector
from repro.runtime import MACHINES, WorkStealingScheduler

GRID = 33
MACHINE = MACHINES["xeon8"]


def candidate_configs():
    """A spread of explicit single-strategy candidates."""
    base_site_values = {}
    for i in range(len(p_app.ACCURACY_BINS)):
        # Sub-solvers: direct on tiny grids, V-cycles above.
        base_site_values[p_app.poisson_site(i)] = Selector(
            ((p_app.size_metric(9) + 1, 0), (None, 2))
        )

    def base(bin_index):
        config = ChoiceConfig()
        for site, selector in base_site_values.items():
            config.set_choice(site, selector)
        for i in range(len(p_app.ACCURACY_BINS)):
            config.set_tunable(f"Poisson_{i}.mgAccuracy", 0)
            config.set_tunable(f"Poisson_{i}.mgCycles", 1)
        return config

    candidates = [("direct", _static_top(0, base(4)))]
    for sweeps in (5, 15, 40, 100, 250, 600, 1500):
        config = base(4)
        config.set_choice(p_app.poisson_site(4), Selector.static(1))
        config.set_tunable("Poisson_4.sorIters", sweeps)
        candidates.append((f"sor x{sweeps}", config))
    for cycles in (1, 2, 3, 4, 6, 8, 12):
        config = base(4)
        config.set_choice(
            p_app.poisson_site(4),
            Selector(((p_app.size_metric(9) + 1, 0), (None, 2))),
        )
        config.set_tunable("Poisson_4.mgCycles", cycles)
        candidates.append((f"mg x{cycles}", config))
    return candidates


def _static_top(option, config):
    config.set_choice(p_app.poisson_site(4), Selector.static(option))
    return config


def build_cloud():
    program = p_app.build_program()
    rng = random.Random(9)
    x0, b = p_app.input_generator(GRID, rng)
    scheduler = WorkStealingScheduler(MACHINE)
    scored = []
    for name, config in candidate_configs():
        result = program.transform(p_app.poisson_name(4)).run([x0, b], config)
        accuracy = p_app.measure_accuracy(x0, result.output("Y"), b)
        elapsed = scheduler.run(result.graph).makespan
        scored.append(Scored(candidate=name, time=elapsed, accuracy=accuracy))
    return scored


def test_fig9_pareto(benchmark):
    scored = benchmark.pedantic(build_cloud, rounds=1, iterations=1)
    front = pareto_front(scored)
    per_bin = fastest_per_bin(scored, PAPER_ACCURACY_BINS)

    lines = [
        f"Figure 9(a): accuracy/time candidates for Poisson, grid {GRID}",
        fmt_row(["candidate", "time", "accuracy", "front?"], [14, 12, 12, 8]),
    ]
    front_names = {s.candidate for s in front}
    for s in sorted(scored, key=lambda s: s.time):
        lines.append(
            fmt_row(
                [
                    s.candidate,
                    f"{s.time:.0f}",
                    f"{s.accuracy:.2e}",
                    "*" if s.candidate in front_names else "",
                ],
                [14, 12, 12, 8],
            )
        )
    lines.append("fastest per accuracy bin (the remembered algorithms):")
    for level, choice in per_bin.items():
        label = choice.candidate if choice else "-"
        lines.append(f"  >= {level:.0e}: {label}")
    write_report("fig9_pareto", lines)

    # The front has several members: no single candidate dominates.
    assert len(front) >= 3
    # Every paper accuracy bin is reachable.
    assert all(choice is not None for choice in per_bin.values())
    # Each bin's pick is no slower than over-solving with the most
    # accurate candidate (the point of keeping a set, §4.1.3).
    most_accurate = max(scored, key=lambda s: s.accuracy)
    for level, choice in per_bin.items():
        assert choice.time <= most_accurate.time + 1e-9
    low, high = per_bin[PAPER_ACCURACY_BINS[0]], per_bin[PAPER_ACCURACY_BINS[-1]]
    assert low.time < high.time
