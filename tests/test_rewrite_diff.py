"""Differential property test: fused execution is invisible.

Hypothesis generates random producer→consumer chains through an
intermediate matrix; every chain the dependence analyzer proves
fusion-legal (PB601) runs both as written and through the verified
fused variant (``__fuse__ = 1``), under all three leaf paths, and must
produce

* bit-identical outputs (exact ``tobytes`` equality, no tolerance),
* identical observable write sets (output matrices are sentinel-filled
  at allocation, so "written" is detectable per cell), and
* identical errors — a failing call fails the same way fused.

Blocked chains (PB602) must run as graceful no-ops under ``__fuse__``.
"""

from contextlib import contextmanager

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.depend import fusion_candidates
from repro.compiler import ChoiceConfig, compile_program
from repro.rewrite import REWRITE_BUDGET
from repro.runtime.matrix import Matrix

#: A value no generated program can produce from the bounded inputs.
SENTINEL = -987654321.25

LEAF_PATHS = (0, 1, 2)

_OPS = ("+", "-", "*")
_CALLS = ("min", "max", "abs")


@contextmanager
def sentinel_alloc():
    """Allocate output/through matrices filled with SENTINEL instead of
    zeros, making the write set observable."""

    def filled(shape, name="", dtype=np.float64):
        return Matrix(np.full(tuple(shape), SENTINEL, dtype=dtype), name)

    original = Matrix.zeros
    Matrix.zeros = staticmethod(filled)
    try:
        yield
    finally:
        Matrix.zeros = original


def _observe(transform, inputs, config):
    with sentinel_alloc():
        result = transform.run(
            {k: v.copy() for k, v in inputs.items()}, config
        )
    outputs = {}
    writes = {}
    for name, matrix in result.outputs.items():
        outputs[name] = matrix.data.tobytes()
        writes[name] = (matrix.data != SENTINEL).tobytes()
    return outputs, writes


def _assert_fused_invisible(source, name, inputs):
    """Fused ≡ unfused (outputs + write sets) under every leaf path."""
    transform = compile_program(source).transform(name)
    reference = None
    for leaf in LEAF_PATHS:
        for fuse in (0, 1):
            config = ChoiceConfig()
            config.set_tunable(f"{name}.__leaf_path__", leaf)
            config.set_tunable(f"{name}.__fuse__", fuse)
            observed = _observe(transform, inputs, config)
            if reference is None:
                reference = observed
                continue
            assert observed[0] == reference[0], (
                f"leaf {leaf} fuse={fuse}: outputs differ"
            )
            assert observed[1] == reference[1], (
                f"leaf {leaf} fuse={fuse}: write sets differ"
            )
    return transform


# -- random fusible chains -------------------------------------------------


@st.composite
def fusible_chains(draw):
    """A random 2-D elementwise producer→consumer chain.

    ``A[n+4, m+4] → T[n+2, m+2] → B[n, m]``: the producer reads A at
    offsets 0..2 (in-bounds over T's domain), the consumer reads T at
    offsets 0..2 (in-bounds over B's domain) and may read A directly.
    """
    n_preads = draw(st.integers(1, 3))
    preads = [
        (f"p{idx}", draw(st.integers(0, 2)), draw(st.integers(0, 2)))
        for idx in range(n_preads)
    ]
    pfroms = ", ".join(
        f"A.cell(x + {dx}, y + {dy}) {bind}" for bind, dx, dy in preads
    )

    def expr(depth, leaves):
        if depth == 0 or draw(st.booleans()):
            return draw(
                st.one_of(
                    st.sampled_from(leaves),
                    st.floats(-2, 2, allow_nan=False).map(
                        lambda f: repr(round(f, 3))
                    ),
                )
            )
        kind = draw(st.sampled_from(("binop", "call", "neg")))
        if kind == "binop":
            op = draw(st.sampled_from(_OPS))
            return f"({expr(depth - 1, leaves)} {op} {expr(depth - 1, leaves)})"
        if kind == "neg":
            return f"(-{expr(depth - 1, leaves)})"
        call = draw(st.sampled_from(_CALLS))
        if call == "abs":
            return f"abs({expr(depth - 1, leaves)})"
        return f"{call}({expr(depth - 1, leaves)}, {expr(depth - 1, leaves)})"

    pbody = expr(2, [bind for bind, _, _ in preads])

    n_creads = draw(st.integers(1, 2))
    creads = [
        (f"t{idx}", draw(st.integers(0, 2)), draw(st.integers(0, 2)))
        for idx in range(n_creads)
    ]
    cfrom = [
        f"T.cell(x + {ex}, y + {ey}) {bind}" for bind, ex, ey in creads
    ]
    cleaves = [bind for bind, _, _ in creads]
    if draw(st.booleans()):
        # A direct A read whose bind collides with a producer bind,
        # exercising the fresh-rename path.
        cfrom.append("A.cell(x, y) p0")
        cleaves.append("p0")
    cbody = expr(2, cleaves)

    return (
        "transform Chain\n"
        "from A[n + 4, m + 4]\n"
        "through T[n + 2, m + 2]\n"
        "to B[n, m]\n"
        "{\n"
        f"  to (T.cell(x, y) t) from ({pfroms}) {{ t = {pbody}; }}\n"
        f"  to (B.cell(x, y) b) from ({', '.join(cfrom)})"
        f" {{ b = {cbody}; }}\n"
        "}\n"
    )


@settings(max_examples=25, deadline=None)
@given(
    source=fusible_chains(),
    n=st.integers(1, 5),
    m=st.integers(1, 5),
    seed=st.integers(0, 2**16),
)
def test_random_chains_fuse_invisibly(source, n, m, seed):
    rng = np.random.default_rng(seed)
    inputs = {"A": rng.uniform(-4.0, 4.0, (n + 4, m + 4))}
    transform = _assert_fused_invisible(source, "Chain", inputs)
    # Every generated chain must actually have exercised the rewrite.
    (cand,) = fusion_candidates(transform, REWRITE_BUDGET)
    assert cand.status == "legal"
    assert transform.fused_variant() is not None


# -- deterministic cases ---------------------------------------------------

PIPE = """
transform Pipe
from A[n, m]
through T[n, m]
to B[n, m]
{
  to (T.cell(x, y) t) from (A.cell(x, y) a) { t = a * 2.0 + 1.0; }
  to (B.cell(x, y) b) from (T.cell(x, y) t) { b = t * 1.5 - 0.5; }
}
"""

ROLLING = """
transform Rolling
from A[n]
through S[n]
to B[n]
{
  primary to (S.cell(0) s) from (A.cell(0) a) { s = a; }
  to (S.cell(i) s) from (A.cell(i) a, S.cell(i - 1) prev) { s = a + prev; }
  to (B.cell(i) b) from (S.cell(i) s) { b = s; }
}
"""


def test_pipe_fuses_invisibly():
    rng = np.random.default_rng(11)
    inputs = {"A": rng.uniform(-4.0, 4.0, (7, 5))}
    _assert_fused_invisible(PIPE, "Pipe", inputs)


@settings(max_examples=15, deadline=None)
@given(n=st.integers(1, 16), seed=st.integers(0, 2**16))
def test_blocked_chain_is_graceful_noop(n, seed):
    """PB602-blocked transforms run identically with __fuse__ = 1: the
    engine finds no verified variant and falls through."""
    rng = np.random.default_rng(seed)
    inputs = {"A": rng.uniform(-1.0, 1.0, n)}
    transform = _assert_fused_invisible(ROLLING, "Rolling", inputs)
    assert transform.fused_variant() is None


def test_error_parity():
    """A failing call fails identically fused and unfused."""
    transform = compile_program(PIPE).transform("Pipe")
    bad_inputs = {"A": np.ones((3,))}  # 1-D input for a 2-D matrix
    failures = []
    for fuse in (0, 1):
        config = ChoiceConfig()
        config.set_tunable("Pipe.__fuse__", fuse)
        with pytest.raises(Exception) as excinfo:
            transform.run(
                {k: v.copy() for k, v in bad_inputs.items()}, config
            )
        failures.append((type(excinfo.value), str(excinfo.value)))
    assert failures[0] == failures[1]
