"""Tests for the DSL tokenizer."""

import pytest

from repro.language.errors import LexError
from repro.language.lexer import Token, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_source(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].kind == "eof"

    def test_keywords_vs_names(self):
        assert kinds("transform Foo") == ["keyword", "name"]

    def test_integers(self):
        toks = tokenize("42")
        assert toks[0].kind == "int" and toks[0].text == "42"

    def test_floats(self):
        assert kinds("1.5") == ["float"]
        assert kinds("2e10") == ["float"]
        assert kinds("1.5e-3") == ["float"]

    def test_range_operator_not_float(self):
        # `0..n` must lex as int, '..', name — not a float.
        assert [(t.kind, t.text) for t in tokenize("0..n")[:-1]] == [
            ("int", "0"),
            ("op", ".."),
            ("name", "n"),
        ]

    def test_maximal_munch_operators(self):
        assert texts("<= == += &&") == ["<=", "==", "+=", "&&"]

    def test_member_access(self):
        assert texts("A.cell(x,y)") == ["A", ".", "cell", "(", "x", ",", "y", ")"]


class TestComments:
    def test_line_comment(self):
        assert kinds("a // comment here\nb") == ["name", "name"]

    def test_block_comment(self):
        assert kinds("a /* x */ b") == ["name", "name"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")


class TestEscapes:
    def test_escape_block(self):
        toks = tokenize("%{ raw C++ here }%")
        assert toks[0].kind == "escape"
        assert "raw C++" in toks[0].text

    def test_unterminated_escape(self):
        with pytest.raises(LexError):
            tokenize("%{ no close")


class TestPositions:
    def test_line_tracking(self):
        toks = tokenize("a\nb\n  c")
        assert toks[0].line == 1
        assert toks[1].line == 2
        assert toks[2].line == 3 and toks[2].column == 3

    def test_bad_character(self):
        with pytest.raises(LexError) as err:
            tokenize("a\n  @")
        assert err.value.line == 2


class TestPaperSources:
    def test_rollingsum_header_tokens(self):
        source = "transform RollingSum\nfrom A[n]\nto B[n]"
        assert texts(source) == [
            "transform", "RollingSum", "from", "A", "[", "n", "]",
            "to", "B", "[", "n", "]",
        ]

    def test_matrix_version_tokens(self):
        assert texts("A<0..n>[m]") == ["A", "<", "0", "..", "n", ">", "[", "m", "]"]
