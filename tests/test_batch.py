"""Seeded stress test for the batch execution engine.

Pushes 10³+ heterogeneous requests (two programs, many shapes, several
configurations) through one submit/gather cycle and checks the
engine-level invariants:

* gather() returns exactly one result per request, **in submission
  order**, even though buckets complete in scrambled (hash) order;
* the bucket count equals the number of distinct (transform, shapes,
  config) combinations actually submitted;
* every stackable request is served stacked, every non-stackable one
  falls back, and the counters account for all of them;
* results are correct (checked against closed-form expectations — the
  differential suite covers byte-parity against the serial engine);
* ``max_stack`` chunking and repeat gathers behave.
"""

import numpy as np
import pytest

from repro.batch import BatchEngine, config_digest
from repro.compiler import ChoiceConfig, Selector, compile_program
from repro.observe import TraceSink
from repro.runtime.batchqueue import BucketQueue, scramble

SCALE = """
transform Scale
from A[n, m]
to B[n, m]
{
  to (B.cell(x, y) b) from (A.cell(x, y) a) { b = a * 2.0 + 1.0; }
}
"""

ROLLINGSUM = """
transform RollingSum
from A[n]
to B[n]
{
  to (B.cell(i) b) from (A.region(0, i+1) in) { b = sum(in); }
  to (B.cell(i) b) from (A.cell(i) a, B.cell(i-1) leftSum) { b = a + leftSum; }
}
"""

SEED = 20090615


def _configs():
    """Three distinct-content configurations for the Scale transform."""
    configs = []
    for leaf in (0, 1, 2):
        config = ChoiceConfig()
        config.set_tunable("Scale.__leaf_path__", leaf)
        configs.append(config)
    return configs


@pytest.fixture(scope="module")
def stress_run():
    """One 1000+-request submit/gather cycle, shared by the invariant
    tests below (the engine is deterministic, so sharing is safe)."""
    program = compile_program(SCALE + ROLLINGSUM)
    scale = program.transform("Scale")
    rolling = program.transform("RollingSum")
    rolling_config = ChoiceConfig()
    rolling_config.set_choice("RollingSum.B.0", Selector.static(0))
    rolling_config.set_choice("RollingSum.B.1", Selector.static(1))

    rng = np.random.default_rng(SEED)
    shapes = [(2, 2), (2, 3), (3, 2), (4, 4), (1, 5)]
    configs = _configs()
    sink = TraceSink(capture_events=False)
    engine = BatchEngine(sink=sink, max_stack=64)

    requests = []  # (kind, inputs, expected array)
    for index in range(1100):
        if index % 5 == 4:  # every 5th request: the fallback transform
            n = int(rng.integers(1, 8))
            a = rng.uniform(-1.0, 1.0, n)
            engine.submit(rolling, {"A": a}, rolling_config)
            requests.append(("rolling", a, np.cumsum(a)))
        else:
            shape = shapes[int(rng.integers(0, len(shapes)))]
            config = configs[int(rng.integers(0, len(configs)))]
            a = rng.uniform(-4.0, 4.0, shape)
            engine.submit(scale, {"A": a}, config)
            requests.append(("scale", (a, config), a * 2.0 + 1.0))

    results = engine.gather()
    return engine, sink, requests, results


def test_submission_order_and_identity(stress_run):
    _, _, requests, results = stress_run
    assert len(results) == len(requests) >= 1000
    for position, result in enumerate(results):
        assert result.request_id == position
        assert result.ok, result.error


def test_results_are_correct(stress_run):
    _, _, requests, results = stress_run
    for (kind, _, expected), result in zip(requests, results):
        np.testing.assert_array_equal(result.output(), expected)
        assert result.stacked is (kind == "scale")


def test_bucket_count_matches_distinct_work(stress_run):
    _, sink, requests, _ = stress_run
    scale_buckets = {
        (inputs[0].shape, config_digest(inputs[1]))
        for kind, inputs, _ in requests
        if kind == "scale"
    }
    rolling_buckets = {
        a.shape for kind, a, _ in requests if kind == "rolling"
    }
    expected = len(scale_buckets) + len(rolling_buckets)
    assert sink.counter("batch.buckets") == expected


def test_counters_account_for_every_request(stress_run):
    _, sink, requests, _ = stress_run
    n_scale = sum(1 for kind, _, _ in requests if kind == "scale")
    n_rolling = len(requests) - n_scale
    assert sink.counter("batch.requests") == len(requests)
    assert sink.counter("batch.stacked_requests") == n_scale
    assert sink.counter("batch.fallbacks") == n_rolling
    assert sink.counter("batch.stacked_steps") > 0
    hist = sink.histograms.get("batch.requests_per_sec")
    assert hist is not None and hist.count == 1


def test_repeat_gather_is_empty(stress_run):
    engine, _, _, _ = stress_run
    assert engine.gather() == []


def test_max_stack_chunking_is_invisible():
    """Chunked stacked sweeps (max_stack smaller than the bucket) give
    byte-identical results to one whole-bucket sweep."""
    program = compile_program(SCALE)
    scale = program.transform("Scale")
    rng = np.random.default_rng(SEED)
    arrays = [rng.uniform(-4.0, 4.0, (3, 3)) for _ in range(50)]

    outcomes = []
    for max_stack in (7, 1024):
        engine = BatchEngine(max_stack=max_stack)
        for a in arrays:
            engine.submit(scale, {"A": a})
        outcomes.append(
            [r.output().tobytes() for r in engine.gather()]
        )
    assert outcomes[0] == outcomes[1]


# -- config freezing and engine-lifetime memory -----------------------------


def test_mutated_config_lands_in_a_new_bucket():
    """Regression: a config mutated between two submits must bucket the
    second request under the *new* content (the old id-keyed digest memo
    silently reused the stale digest)."""
    program = compile_program(SCALE)
    scale = program.transform("Scale")
    sink = TraceSink(capture_events=False)
    engine = BatchEngine(sink=sink)
    a = np.ones((2, 2))

    config = ChoiceConfig()
    config.set_tunable("Scale.__leaf_path__", 1)
    engine.submit(scale, {"A": a}, config)
    config.set_tunable("Scale.__leaf_path__", 2)  # mutate after submit
    engine.submit(scale, {"A": a}, config)

    results = engine.gather()
    assert all(result.ok for result in results)
    assert sink.counter("batch.buckets") == 2


def test_submit_freezes_config_content():
    """Execution uses the config as submitted: mutating it afterwards
    (here: forcing an out-of-range leaf path would break nothing, so we
    flip a choice selector that changes nothing numerically but would
    change the digest) does not leak into the already-queued request."""
    program = compile_program(SCALE)
    scale = program.transform("Scale")
    engine = BatchEngine()
    a = np.arange(4.0).reshape(2, 2)
    config = ChoiceConfig()
    config.set_tunable("Scale.__leaf_path__", 1)
    engine.submit(scale, {"A": a}, config)
    config.tunables.clear()  # caller reuses the object for something else
    (result,) = engine.gather()
    np.testing.assert_array_equal(result.output(), a * 2.0 + 1.0)


def test_soak_digest_path_is_bounded():
    """10k requests with 10k distinct config objects against ONE engine:
    no config object may stay pinned after its gather, and the plan
    cache must stay bounded — the serve-daemon lifetime invariant."""
    import gc
    import weakref

    program = compile_program(SCALE)
    scale = program.transform("Scale")
    engine = BatchEngine(max_stack=256, plan_cache_size=32)
    a = np.ones((2, 2))

    refs = []
    for round_number in range(100):
        for index in range(100):
            config = ChoiceConfig()
            config.set_tunable("Scale.__seq_cutoff__", index)
            refs.append(weakref.ref(config))
            engine.submit(scale, {"A": a}, config)
            del config
        results = engine.gather()
        assert all(result.ok for result in results)
        del results

    gc.collect()
    assert all(ref() is None for ref in refs), "engine pinned configs"
    assert len(engine._plans) <= 32
    assert not hasattr(engine, "_digests")


def test_precomputed_digest_skips_copy():
    """The serve hot path: a caller-owned immutable config submitted
    with its precomputed digest is used by reference (no copy, no
    serialization) and still buckets by the given digest."""
    program = compile_program(SCALE)
    scale = program.transform("Scale")
    sink = TraceSink(capture_events=False)
    engine = BatchEngine(sink=sink)
    a = np.ones((2, 2))
    config = ChoiceConfig()
    config.set_tunable("Scale.__leaf_path__", 1)
    digest = config_digest(config)
    engine.submit(scale, {"A": a}, config, digest=digest)
    engine.submit(scale, {"A": a}, config, digest=digest)
    assert all(
        request.config is config for request in engine._pending
    )
    results = engine.gather()
    assert all(result.ok for result in results)
    assert sink.counter("batch.buckets") == 1


# -- BucketQueue: deterministic out-of-order completion ---------------------


def test_bucket_queue_scrambles_deterministically():
    keys = [f"bucket{i}" for i in range(12)]
    first = BucketQueue()
    second = BucketQueue()
    for position, key in enumerate(keys):
        first.add(key, position)
        second.add(key, position)
    drained_first = [key for key, _ in first.drain()]
    drained_second = [key for key, _ in second.drain()]
    assert drained_first == drained_second  # deterministic
    assert drained_first != keys  # and genuinely out of insertion order
    assert sorted(drained_first) == sorted(keys)
    assert drained_first == sorted(keys, key=scramble)
    assert len(first) == 0  # drained


def test_bucket_queue_preserves_order_within_buckets():
    queue = BucketQueue()
    for item in range(30):
        queue.add(f"k{item % 3}", item)
    assert len(queue) == 30
    assert queue.bucket_count == 3
    for key, items in queue.drain():
        assert items == sorted(items)


def test_gather_order_survives_scrambled_buckets():
    """The engine's submission-order guarantee is exercised for real:
    the bucket drain order differs from submission order, yet results
    come back position-aligned."""
    program = compile_program(SCALE)
    scale = program.transform("Scale")
    rng = np.random.default_rng(1)
    shapes = [(1, 1), (2, 2), (3, 3), (4, 4), (5, 5)]

    sink = TraceSink(capture_events=False)
    engine = BatchEngine(sink=sink)
    expected = []
    for index in range(40):
        shape = shapes[index % len(shapes)]
        a = rng.uniform(-1, 1, shape)
        engine.submit(scale, {"A": a})
        expected.append(a * 2.0 + 1.0)
    results = engine.gather()
    assert sink.counter("batch.buckets") == len(shapes)
    for index, result in enumerate(results):
        assert result.request_id == index
        np.testing.assert_array_equal(result.output(), expected[index])
