"""Unit tests for the static dependence analyzer (pass family 6).

Covers the Bernstein classification (flow/anti/output with symbolic
distances), the fusion legality gate (legal / blocked / ineligible with
structural reasons), the PB602 witness contract (every blocked verdict
carries a concrete conflict that replays against the engine's exact
geometry), and the PB601/PB602/PB603 diagnostics.
"""

from dataclasses import replace
from fractions import Fraction

from repro.analysis.check import check_source
from repro.analysis.depend import (
    check_depend,
    fusion_candidates,
    rule_dependences,
    validate_conflict,
)
from repro.analysis.witness import WitnessBudget
from repro.compiler import compile_program
from repro.symbolic import Affine
from repro.symbolic.solve import unit_stride_offset

BUDGET = WitnessBudget(
    max_size=3, max_envs=8, max_instances=512, max_cells=1024
)

# A legal producer→consumer chain: one elementwise writer of T, one
# aligned elementwise reader.
PIPE = """
transform Pipe
from A[n, m]
through T[n, m]
to B[n, m]
{
  to (T.cell(x, y) t) from (A.cell(x, y) a) { t = a * 2.0 + 1.0; }
  to (B.cell(x, y) b) from (T.cell(x, y) t) { b = t * 1.5 - 0.5; }
}
"""

# Same shape but the consumer reads one cell ahead: still legal, with a
# nonzero constant distance.
SHIFT = """
transform Shift
from A[n + 1]
through T[n + 1]
to B[n]
{
  to (T.cell(i) t) from (A.cell(i) a) { t = a + 1.0; }
  to (B.cell(i) b) from (T.cell(i + 1) t) { b = t * 2.0; }
}
"""

# Non-unit-stride consumer read: the distance is unknowable ("*") but
# substitution is still exact, so fusion stays legal.
STRIDE = """
transform Stride
from A[2 * n]
through T[2 * n]
to B[n]
{
  to (T.cell(j) t) from (A.cell(j) a) { t = a * 3.0; }
  to (B.cell(i) b) from (T.cell(2 * i) t) { b = t + 1.0; }
}
"""

# A carried flow dependence: the chain rule reads S cells another
# instance writes, so fusion over S must be blocked with a witness.
ROLLING = """
transform Rolling
from A[n]
through S[n]
to B[n]
{
  primary to (S.cell(0) s) from (A.cell(0) a) { s = a; }
  to (S.cell(i) s) from (A.cell(i) a, S.cell(i - 1) prev) { s = a + prev; }
  to (B.cell(i) b) from (S.cell(i) s) { b = s; }
}
"""

# Two interchangeable writers of T (an algorithmic choice): ineligible.
TWO_WRITERS = """
transform TwoWriters
from A[n]
through T[n]
to B[n]
{
  to (T.cell(i) t) from (A.cell(i) a) { t = a; }
  to (T.cell(i) t) from (A.cell(i) a) { t = a + 0.0; }
  to (B.cell(i) b) from (T.cell(i) t) { b = t; }
}
"""

# T feeds two distinct consumer rules: ineligible.
TWO_CONSUMERS = """
transform TwoConsumers
from A[n]
through T[n]
to B[n], C[n]
{
  to (T.cell(i) t) from (A.cell(i) a) { t = a * 2.0; }
  to (B.cell(i) b) from (T.cell(i) t) { b = t; }
  to (C.cell(i) c) from (T.cell(i) t) { c = t + 1.0; }
}
"""

# The producer reads a region view: not a pure elementwise step.
REGION_PRODUCER = """
transform RegionProducer
from A[n + 1]
through T[n]
to B[n]
{
  to (T.cell(i) t) from (A.region(i, i + 2) w) { t = sum(w); }
  to (B.cell(i) b) from (T.cell(i) t) { b = t; }
}
"""

COPY = """
transform Copy
from A[n]
to B[n]
{
  to (B.cell(i) b) from (A.cell(i) a) { b = a; }
}
"""


def compiled(source, name):
    return compile_program(source).transform(name)


# -- the distance primitive ------------------------------------------------


class TestUnitStrideOffset:
    def test_aligned_sweep_is_zero(self):
        i, j = Affine.var("i"), Affine.var("j")
        assert unit_stride_offset(i, j, ("i",), ("j",)) == 0

    def test_constant_gap(self):
        i, j = Affine.var("i"), Affine.var("j")
        assert unit_stride_offset(i, j + 1, ("i",), ("j",)) == Fraction(1)
        assert unit_stride_offset(i + 2, j, ("i",), ("j",)) == Fraction(-2)

    def test_both_constant(self):
        assert unit_stride_offset(0, 0, ("i",), ("j",)) == 0

    def test_non_unit_stride_is_unknown(self):
        i, j = Affine.var("i"), Affine.var("j")
        assert unit_stride_offset(i, 2 * j, ("i",), ("j",)) is None

    def test_broadcast_is_unknown(self):
        # One side sweeps, the other is fixed: the gap varies per pair.
        i = Affine.var("i")
        assert unit_stride_offset(i, Affine.const(0), ("i",), ("j",)) is None

    def test_size_var_gap_is_not_constant(self):
        # A size variable is not an instance variable; a residual size
        # term makes the per-pair gap symbolic, hence unknown.
        i, j, n = Affine.var("i"), Affine.var("j"), Affine.var("n")
        assert unit_stride_offset(i + n, j, ("i",), ("j",)) is None
        assert unit_stride_offset(i, j + n, ("i",), ("j",)) is None


# -- classification --------------------------------------------------------


class TestRuleDependences:
    def test_pipe_flow_and_anti(self):
        deps = rule_dependences(compiled(PIPE, "Pipe").ir)
        by_kind = {(d.kind, d.src_rule, d.dst_rule): d for d in deps}
        flow = by_kind[("flow", "rule0", "rule1")]
        anti = by_kind[("anti", "rule1", "rule0")]
        assert flow.matrix == "T" and anti.matrix == "T"
        assert flow.distance == (Fraction(0), Fraction(0))
        assert flow.distance_text() == "(0, 0)"
        assert len(deps) == 2  # A is input, B has no reader

    def test_shift_distance(self):
        deps = rule_dependences(compiled(SHIFT, "Shift").ir)
        flow = next(d for d in deps if d.kind == "flow")
        assert flow.distance == (Fraction(1),)

    def test_stride_distance_unknown(self):
        deps = rule_dependences(compiled(STRIDE, "Stride").ir)
        flow = next(d for d in deps if d.kind == "flow")
        assert flow.distance == (None,)
        assert flow.distance_text() == "(*)"

    def test_output_dependence_between_writers(self):
        deps = rule_dependences(compiled(TWO_WRITERS, "TwoWriters").ir)
        outputs = [d for d in deps if d.kind == "output"]
        assert len(outputs) == 1
        assert outputs[0].matrix == "T"
        assert outputs[0].distance == (Fraction(0),)

    def test_rolling_carried_flow(self):
        deps = rule_dependences(compiled(ROLLING, "Rolling").ir)
        carried = [
            d
            for d in deps
            if d.kind == "flow" and d.src_rule == "rule1" and d.dst_rule == "rule1"
        ]
        assert carried, "chain rule must depend on itself through S"
        assert carried[0].distance == (Fraction(-1),)


# -- fusion candidates -----------------------------------------------------


class TestFusionCandidates:
    def test_pipe_is_legal(self):
        (cand,) = fusion_candidates(compiled(PIPE, "Pipe"), BUDGET)
        assert cand.status == "legal"
        assert (cand.matrix, cand.producer, cand.consumer) == (
            "T", "rule0", "rule1",
        )
        assert cand.distances == ((Fraction(0), Fraction(0)),)

    def test_shift_is_legal_with_distance(self):
        (cand,) = fusion_candidates(compiled(SHIFT, "Shift"), BUDGET)
        assert cand.status == "legal"
        assert cand.distances == ((Fraction(1),),)
        assert cand.distance_text() == "(1)"

    def test_stride_is_legal_with_unknown_distance(self):
        (cand,) = fusion_candidates(compiled(STRIDE, "Stride"), BUDGET)
        assert cand.status == "legal"
        assert cand.distance_text() == "(*)"

    def test_rolling_is_blocked_with_witness(self):
        (cand,) = fusion_candidates(compiled(ROLLING, "Rolling"), BUDGET)
        assert cand.status == "blocked"
        assert cand.conflict is not None
        assert cand.conflict.matrix == "S"
        assert "depend on other S cells" in cand.reason

    def test_two_writers_ineligible(self):
        (cand,) = fusion_candidates(compiled(TWO_WRITERS, "TwoWriters"), BUDGET)
        assert cand.status == "ineligible"
        assert "2 rules write T" in cand.reason

    def test_two_consumers_ineligible(self):
        (cand,) = fusion_candidates(
            compiled(TWO_CONSUMERS, "TwoConsumers"), BUDGET
        )
        assert cand.status == "ineligible"
        assert "2 consumer rules" in cand.reason

    def test_region_producer_ineligible(self):
        (cand,) = fusion_candidates(
            compiled(REGION_PRODUCER, "RegionProducer"), BUDGET
        )
        assert cand.status == "ineligible"
        assert "non-cell view" in cand.reason

    def test_no_throughs_no_candidates(self):
        assert fusion_candidates(compiled(COPY, "Copy"), BUDGET) == []


# -- the PB602 witness contract --------------------------------------------


class TestConflictWitness:
    def test_witness_replays(self):
        transform = compiled(ROLLING, "Rolling")
        (cand,) = fusion_candidates(transform, BUDGET)
        assert validate_conflict(transform, cand.conflict)

    def test_tampered_witness_rejected(self):
        transform = compiled(ROLLING, "Rolling")
        (cand,) = fusion_candidates(transform, BUDGET)
        witness = cand.conflict
        # Wrong cell: neither region contains it.
        assert not validate_conflict(
            transform, replace(witness, cell=(99,))
        )
        # Same rule, same instance: not a cross-instance conflict.
        assert not validate_conflict(
            transform,
            replace(
                witness,
                reader_rule_id=witness.writer_rule_id,
                reader=witness.writer,
            ),
        )
        # Out-of-range rule id.
        assert not validate_conflict(
            transform, replace(witness, writer_rule_id=17)
        )

    def test_witness_description_names_the_instances(self):
        transform = compiled(ROLLING, "Rolling")
        (cand,) = fusion_candidates(transform, BUDGET)
        text = cand.conflict.describe()
        assert "writes S[" in text and "reads it" in text


# -- diagnostics -----------------------------------------------------------


class TestCheckDepend:
    def test_pipe_emits_pb601_and_audit(self):
        transform = compiled(PIPE, "Pipe")
        diags = check_depend(transform, BUDGET)
        codes = [d.code for d in diags]
        assert codes == ["PB601", "PB603"]
        pb601 = diags[0]
        assert pb601.severity == "info"
        assert "is legal" in pb601.message
        assert "__fuse__" in pb601.hint
        assert pb601.region == "T"
        audit = diags[1]
        assert "2 dependence(s) (1 flow, 1 anti, 0 output)" in audit.message
        assert "T legal" in audit.message

    def test_rolling_emits_pb602_with_witness(self):
        transform = compiled(ROLLING, "Rolling")
        diags = check_depend(transform, BUDGET)
        pb602 = next(d for d in diags if d.code == "PB602")
        assert pb602.severity == "info"
        assert pb602.witness, "PB602 must carry a replayable witness"
        audit = next(d for d in diags if d.code == "PB603")
        assert "S blocked" in audit.message

    def test_audit_always_emitted(self):
        diags = check_depend(compiled(COPY, "Copy"), BUDGET)
        assert [d.code for d in diags] == ["PB603"]
        assert "no fusion candidates" in diags[0].message

    def test_ineligible_reason_lands_in_audit(self):
        diags = check_depend(compiled(TWO_WRITERS, "TwoWriters"), BUDGET)
        audit = next(d for d in diags if d.code == "PB603")
        assert "T ineligible (2 rules write T" in audit.message

    def test_check_source_includes_depend_family(self):
        report = check_source(PIPE)
        codes = {d.code for d in report}
        assert {"PB601", "PB603"} <= codes
        assert report.exit_code(strict=True) == 0
