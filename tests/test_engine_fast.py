"""Tests for the lowered rule-execution paths (repro.engine_fast).

The contract under test: the closure path is bit-for-bit identical to
the interpreter — outputs, rule application counts, task structure, and
work accounting — and the vector path is bit-identical in outputs and
application counts while charging its own (cheaper) work model.
"""

import numpy as np
import pytest

from repro.analysis import check_source
from repro.compiler import ChoiceConfig, Selector, compile_program
from repro.compiler.codegen import specialize
from repro.engine_fast import (
    LEAF_CLOSURE,
    LEAF_INTERP,
    LEAF_VECTOR,
    lower_rule,
)
from repro.language.errors import PetaBricksError
from repro.observe import TraceSink

ELEMENTWISE = """
transform Elementwise
from A[n+1, m+1]
to B[n, m]
{
  to (B.cell(x, y) b) from (A.cell(x, y) a, A.cell(x+1, y+1) d) {
    b = a * 0.5 + d * 0.25 + 1.0;
  }
}
"""

ROLLINGSUM = """
transform RollingSum
from A[n]
to B[n]
{
  to (B.cell(i) b) from (A.region(0, i+1) in) { b = sum(in); }
  to (B.cell(i) b) from (A.cell(i) a, B.cell(i-1) leftSum) { b = a + leftSum; }
}
"""

CHECKER = """
transform Checker
from A[n]
to B[n]
{
  to (B.cell(i) b) from (A.cell(i) a) where i % 2 == 0 { b = a * 2; }
  to (B.cell(i) b) from (A.cell(i) a) { b = a; }
}
"""


def _leaf_config(transform, leaf, **tunables):
    config = ChoiceConfig()
    config.set_tunable(f"{transform}.__leaf_path__", leaf)
    for name, value in tunables.items():
        config.set_tunable(f"{transform}.{name}", value)
    return config


def _run_all_paths(transform, inputs, base_config=None):
    results = {}
    for leaf in (LEAF_INTERP, LEAF_CLOSURE, LEAF_VECTOR):
        config = ChoiceConfig(
            choices=dict(base_config.choices) if base_config else {},
            tunables=dict(base_config.tunables) if base_config else {},
        )
        config.set_tunable(f"{transform.name}.__leaf_path__", leaf)
        results[leaf] = transform.run(inputs, config)
    return results


class TestClosureLowering:
    def test_dsl_rules_get_kernels(self):
        t = compile_program(ROLLINGSUM).transform("RollingSum")
        for rule in t.ir.rules:
            kernel = t._kernel(rule)
            assert kernel is not None
            assert "def _maker" in kernel.source

    def test_three_paths_bitwise_equal(self):
        t = compile_program(ROLLINGSUM).transform("RollingSum")
        a = np.random.default_rng(0).uniform(-1, 1, 40)
        for option in (0, 1):
            base = ChoiceConfig()
            base.set_choice("RollingSum.B.0", Selector.static(0))
            base.set_choice("RollingSum.B.1", Selector.static(option))
            results = _run_all_paths(t, {"A": a}, base)
            reference = results[LEAF_INTERP]
            for leaf in (LEAF_CLOSURE, LEAF_VECTOR):
                result = results[leaf]
                assert (
                    result.output().tobytes()
                    == reference.output().tobytes()
                )
                assert (
                    result.rule_applications
                    == reference.rule_applications
                )

    def test_closure_matches_interp_work_and_tasks(self):
        """The closure path must be observationally identical to the
        interpreter: same task labels/deps and the same total work."""
        t = compile_program(ROLLINGSUM).transform("RollingSum")
        a = np.arange(24.0)
        results = _run_all_paths(t, {"A": a})
        interp, closure = results[LEAF_INTERP], results[LEAF_CLOSURE]
        assert closure.graph.total_work() == interp.graph.total_work()
        assert len(closure.graph) == len(interp.graph)
        label_deps = lambda g: [
            (task.label, tuple(task.deps)) for task in g.tasks
        ]
        assert label_deps(closure.graph) == label_deps(interp.graph)

    def test_closure_counter(self):
        t = compile_program(ROLLINGSUM).transform("RollingSum")
        sink = TraceSink()
        t.run({"A": np.arange(8.0)}, _leaf_config("RollingSum", 1), sink=sink)
        assert sink.counter("exec.closure_calls") == 8

    def test_division_by_zero_matches_interp(self):
        source = """
        transform Div
        from A[n]
        to B[n]
        {
          to (B.cell(i) b) from (A.cell(i) a) { b = 1.0 / a; }
        }
        """
        t = compile_program(source).transform("Div")
        a = np.array([1.0, 0.0, 2.0])
        for leaf in (LEAF_INTERP, LEAF_CLOSURE, LEAF_VECTOR):
            with pytest.raises(PetaBricksError, match="division by zero"):
                t.run({"A": a}, _leaf_config("Div", leaf))

    def test_compound_assign_parity(self):
        source = """
        transform Acc
        from A[n]
        to B[n]
        {
          to (B.cell(i) b) from (A.cell(i) a) { b = a; b += 2 * a; b *= 0.5; }
        }
        """
        t = compile_program(source).transform("Acc")
        a = np.random.default_rng(1).uniform(-3, 3, 17)
        results = _run_all_paths(t, {"A": a})
        blobs = {
            leaf: r.output().tobytes() for leaf, r in results.items()
        }
        assert blobs[LEAF_CLOSURE] == blobs[LEAF_INTERP]
        assert blobs[LEAF_VECTOR] == blobs[LEAF_INTERP]

    def test_meta_rule_residual_parity(self):
        """Where-clause meta-rules run their predicate through the
        lowered residual and fall back per instance, exactly like the
        interpreter."""
        t = compile_program(CHECKER).transform("Checker")
        a = np.arange(10.0)
        base = ChoiceConfig()
        # Select the meta-rule option (restricted rule0 + fallback rule1)
        (segment,) = t.grid.segments["B"]
        meta = [
            i
            for i, opt in enumerate(segment.options)
            if opt.fallback is not None
        ][0]
        base.set_choice("Checker.B.0", Selector.static(meta))
        results = _run_all_paths(t, {"A": a}, base)
        expected = np.where(np.arange(10) % 2 == 0, a * 2, a)
        for leaf, result in results.items():
            assert np.array_equal(result.output(), expected), leaf
            assert (
                result.rule_applications
                == results[LEAF_INTERP].rule_applications
            )

    def test_whole_rule_not_lowered(self):
        t = compile_program(ROLLINGSUM).transform("RollingSum")
        whole = [r for r in t.ir.rules if not r.is_instance_rule]
        for rule in whole:
            assert lower_rule(rule, t.ir) is None


class TestVectorLeaf:
    def test_vector_bitwise_equal_and_counters(self):
        t = compile_program(ELEMENTWISE).transform("Elementwise")
        a = np.random.default_rng(2).uniform(-4, 4, (13, 15))
        results = _run_all_paths(t, {"A": a})
        assert (
            results[LEAF_VECTOR].output().tobytes()
            == results[LEAF_INTERP].output().tobytes()
        )
        sink = TraceSink()
        t.run({"A": a}, _leaf_config("Elementwise", 2), sink=sink)
        assert sink.counter("exec.vectorized_blocks") >= 1
        assert sink.counter("exec.vectorized_cells") == 12 * 14
        assert sink.counter("exec.vector_fallbacks") == 0

    def test_vector_task_graph_is_smaller(self):
        t = compile_program(ELEMENTWISE).transform("Elementwise")
        a = np.zeros((40, 40))
        results = _run_all_paths(t, {"A": a})
        assert len(results[LEAF_VECTOR].graph) < len(
            results[LEAF_INTERP].graph
        )
        assert (
            results[LEAF_VECTOR].graph.total_work()
            < results[LEAF_INTERP].graph.total_work()
        )

    def test_cutoff_demotes_to_closure(self):
        t = compile_program(ELEMENTWISE).transform("Elementwise")
        a = np.zeros((9, 9))
        config = _leaf_config(
            "Elementwise", 2, __vectorize_cutoff__=10_000
        )
        sink = TraceSink()
        result = t.run({"A": a}, config, sink=sink)
        assert sink.counter("exec.vectorized_blocks") == 0
        assert sink.counter("exec.vector_fallbacks") >= 1
        assert sink.counter("exec.closure_calls") == 8 * 8
        assert np.allclose(
            result.output(), a[:-1, :-1] * 0.5 + a[1:, 1:] * 0.25 + 1.0
        )

    def test_region_reduction_rejected(self):
        t = compile_program(ROLLINGSUM).transform("RollingSum")
        from repro.analysis.races import vector_leaf_status

        segment = t._segments["B.1"]
        ok, reason = vector_leaf_status(t, segment, t.ir.rules[0])
        assert not ok and "region" in reason
        ok, reason = vector_leaf_status(t, segment, t.ir.rules[1])
        assert not ok and "sequential chain" in reason

    def test_negative_direction_chain_with_vector_free_vars(self):
        """A rule with one sequential axis and one parallel axis
        vectorizes the parallel axis only, per chain step."""
        source = """
        transform Sweep
        from A[n, m]
        to B[n, m]
        {
          to (B.cell(x, y) b) from (A.cell(x, y) a, B.cell(x, y-1) p) {
            b = a + p;
          }
          to (B.cell(x, 0) b) from (A.cell(x, 0) a) { b = a; }
        }
        """
        t = compile_program(source).transform("Sweep")
        a = np.random.default_rng(3).uniform(-1, 1, (6, 7))
        results = _run_all_paths(t, {"A": a})
        assert (
            results[LEAF_VECTOR].output().tobytes()
            == results[LEAF_INTERP].output().tobytes()
        )

    def test_geometry_cache_hits_across_runs(self):
        t = compile_program(ELEMENTWISE).transform("Elementwise")
        a = np.zeros((10, 10))
        sink1 = TraceSink()
        t.run({"A": a}, sink=sink1)
        misses = sink1.counter("exec.geom_cache_misses")
        assert misses >= 1
        sink2 = TraceSink()
        t.run({"A": a}, sink=sink2)
        assert sink2.counter("exec.geom_cache_misses") == 0
        assert sink2.counter("exec.geom_cache_hits") == misses


class TestChoiceIntegration:
    def test_leveled_leaf_path_switches_by_size(self):
        """The leaf path is a per-size algorithmic choice: a leveled
        tunable can pick vector for large runs, interp for small."""
        t = compile_program(ELEMENTWISE).transform("Elementwise")
        config = ChoiceConfig()
        config.set_leveled_tunable(
            "Elementwise.__leaf_path__", Selector(((64, 0), (None, 2)))
        )
        small, large = np.zeros((5, 5)), np.zeros((30, 30))
        sink = TraceSink()
        t.run({"A": small}, config, sink=sink)
        assert sink.counter("exec.vectorized_blocks") == 0
        sink = TraceSink()
        t.run({"A": large}, config, sink=sink)
        assert sink.counter("exec.vectorized_blocks") >= 1

    def test_specialized_program_uses_kernels(self):
        program = compile_program(ELEMENTWISE)
        config = _leaf_config("Elementwise", 2)
        static = specialize(program, config)
        a = np.random.default_rng(4).uniform(-1, 1, (8, 9))
        result = static.transform("Elementwise").run({"A": a})
        reference = program.transform("Elementwise").run(
            {"A": a}, _leaf_config("Elementwise", 0)
        )
        assert result.output().tobytes() == reference.output().tobytes()

    def test_check_reports_leaf_path_diagnostics(self):
        report = check_source(ELEMENTWISE)
        codes = {d.code for d in report}
        assert "PB501" in codes
        assert report.clean  # INFOs don't dirty the report
        report = check_source(ROLLINGSUM)
        info = {d.code for d in report}
        assert "PB502" in info

    def test_tuner_searches_leaf_path(self):
        from repro.autotuner import Evaluator, GeneticTuner
        from repro.runtime import MACHINES

        program = compile_program(ROLLINGSUM)

        def gen(size, rng):
            return [np.array([rng.uniform(-1, 1) for _ in range(size)])]

        evaluator = Evaluator(program, "RollingSum", gen, MACHINES["xeon8"])
        tuner = GeneticTuner(
            evaluator,
            min_size=8,
            max_size=32,
            population_size=2,
            parents=1,
            tunable_rounds=1,
            refine_passes=0,
        )
        config = tuner.tune().config
        keys = set(config.tunables) | set(config.leveled_tunables)
        assert "RollingSum.__leaf_path__" in keys
        assert "RollingSum.__vectorize_cutoff__" in keys
