"""Tests for the Sort benchmark application."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import sort as sort_app
from repro.autotuner import Evaluator, check_consistency
from repro.compiler import ChoiceConfig, Selector
from repro.runtime import MACHINES


@pytest.fixture(scope="module")
def program():
    return sort_app.build_program()


def run_sort(program, data, config=None):
    result = program.transform("Sort").run([np.asarray(data, dtype=float)], config)
    return result


def static_config(option, seq_cutoff=None):
    config = ChoiceConfig()
    config.set_choice(sort_app.SORT_SITE, Selector.static(option))
    if seq_cutoff is not None:
        config.set_tunable("Sort.__seq_cutoff__", seq_cutoff)
    return config


def hybrid_config(levels):
    config = ChoiceConfig()
    config.set_choice(sort_app.SORT_SITE, Selector(tuple(levels)))
    return config


class TestCorrectness:
    @pytest.mark.parametrize("option", range(7))
    def test_each_algorithm_sorts(self, program, option):
        rng = np.random.default_rng(option)
        data = rng.random(257)
        result = run_sort(program, data, static_config(option))
        np.testing.assert_allclose(result.output("B"), np.sort(data))

    @pytest.mark.parametrize("option", range(7))
    def test_duplicates(self, program, option):
        rng = np.random.default_rng(option + 100)
        data = rng.integers(0, 5, size=64).astype(float)
        result = run_sort(program, data, static_config(option))
        np.testing.assert_allclose(result.output("B"), np.sort(data))

    @pytest.mark.parametrize("option", range(7))
    def test_all_equal(self, program, option):
        data = np.full(33, 7.0)
        result = run_sort(program, data, static_config(option))
        np.testing.assert_allclose(result.output("B"), data)

    @pytest.mark.parametrize("n", [0, 1, 2, 3])
    def test_tiny_inputs(self, program, n):
        data = np.arange(n, dtype=float)[::-1].copy()
        for option in range(7):
            result = run_sort(program, data, static_config(option))
            np.testing.assert_allclose(result.output("B"), np.sort(data))

    def test_already_sorted_and_reversed(self, program):
        data = np.arange(128, dtype=float)
        for arr in (data, data[::-1].copy()):
            result = run_sort(program, arr, static_config(1))
            np.testing.assert_allclose(result.output("B"), np.sort(arr))

    def test_hybrid_composition(self, program):
        # 2MS above 1000 elements, QS above 100, IS below (paper-style).
        config = hybrid_config(
            [(sort_app.size_metric(100), 0), (sort_app.size_metric(1000), 1), (None, 2)]
        )
        rng = np.random.default_rng(3)
        data = rng.random(3000)
        result = run_sort(program, data, config)
        np.testing.assert_allclose(result.output("B"), np.sort(data))

    def test_consistency_harness(self, program):
        compared = check_consistency(
            program,
            "Sort",
            sort_app.input_generator,
            sizes=[1, 17, 200],
            threshold=0.0,
        )
        assert all(count == 7 for count in compared.values())

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), max_size=200),
           st.integers(0, 6))
    def test_property_sorts(self, program, values, option):
        data = np.asarray(values, dtype=float)
        result = run_sort(program, data, static_config(option))
        np.testing.assert_allclose(result.output("B"), np.sort(data))


class TestCostModel:
    def time_of(self, program, option, n, machine="xeon1"):
        ev = Evaluator(
            program, "Sort", sort_app.input_generator, MACHINES[machine]
        )
        return ev.time(static_config(option), n)

    def test_insertion_wins_small(self, program):
        assert self.time_of(program, 0, 32) < self.time_of(program, 1, 32)

    def test_quicksort_wins_large_over_insertion(self, program):
        assert self.time_of(program, 1, 4096) < self.time_of(program, 0, 4096)

    def test_is_qs_crossover_in_paper_range(self, program):
        """Paper §1: the optimal IS cutoff is around 60-150, not 15."""
        crossover = None
        for n in (16, 32, 64, 128, 256, 512):
            if self.time_of(program, 1, n) < self.time_of(program, 0, n):
                crossover = n
                break
        assert crossover is not None and 32 <= crossover <= 512

    def test_radix_hybrid_fastest_sequential_large(self, program):
        """Table 2: the 1-core tuned config tops out with radix sort.
        Compare paper-style hybrids (algorithm X above the cutoff,
        insertion sort below)."""
        ev = Evaluator(
            program, "Sort", sort_app.input_generator, MACHINES["xeon1"]
        )
        times = {}
        for opt in (1, 2, 6):
            config = hybrid_config(
                [(sort_app.size_metric(75), 0), (None, opt)]
            )
            times[opt] = ev.time(config, 16384)
        assert times[6] < times[1] and times[6] < times[2]

    def test_merge_sort_scales_on_8_cores(self, program):
        ev1 = Evaluator(program, "Sort", sort_app.input_generator, MACHINES["xeon1"])
        ev8 = Evaluator(program, "Sort", sort_app.input_generator, MACHINES["xeon8"])
        config = hybrid_config([(sort_app.size_metric(512), 0), (None, 2)])
        n = 32768
        speedup = ev1.time(config, n) / ev8.time(config, n)
        assert speedup > 2.5

    def test_insertion_sort_does_not_scale(self, program):
        ev1 = Evaluator(program, "Sort", sort_app.input_generator, MACHINES["xeon1"])
        ev8 = Evaluator(program, "Sort", sort_app.input_generator, MACHINES["xeon8"])
        config = static_config(0)
        ratio = ev1.time(config, 2048) / ev8.time(config, 2048)
        assert ratio == pytest.approx(1.0, rel=0.05)


class TestDescribeConfig:
    def test_paper_notation(self):
        config = hybrid_config(
            [(sort_app.size_metric(600), 0), (sort_app.size_metric(1420), 1), (None, 2)]
        )
        assert sort_app.describe_config(config) == "IS(600) QS(1420) 2MS(inf)"

    def test_default(self):
        assert sort_app.describe_config(ChoiceConfig()) == "IS(inf)"
