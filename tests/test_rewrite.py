"""Unit tests for the legality-gated rewrite layer (`repro.rewrite`).

Covers the structural fusion rewrite (`apply_fusion` / `fuse_transform`),
the verified engine variant (`build_fused_variant`, `fused_variant()`
dispatch through the `__fuse__` tunable), and the IR unparser that
`repro rewrite --apply` emits fused source through.
"""

import numpy as np
import pytest

from repro.analysis.depend import fusion_candidates
from repro.compiler import ChoiceConfig, compile_program
from repro.language import ast_nodes as ast
from repro.rewrite import (
    FusionError,
    REWRITE_BUDGET,
    apply_fusion,
    build_fused_variant,
    fuse_transform,
    program_src,
    transform_src,
)

PIPE = """
transform Pipe
from A[n, m]
through T[n, m]
to B[n, m]
{
  to (T.cell(x, y) t) from (A.cell(x, y) a) { t = a * 2.0 + 1.0; }
  to (B.cell(x, y) b) from (T.cell(x, y) t) { b = t * 1.5 - 0.5; }
}
"""

# The consumer reads T at two shifted offsets and also reads A under the
# same bind name the producer uses: exercises per-read σ substitution and
# collision-free renaming at once.
STENCIL = """
transform Stencil
from A[n + 1]
through T[n + 1]
to B[n]
{
  to (T.cell(i) t) from (A.cell(i) a) { t = a * 0.5 + 1.0; }
  to (B.cell(i) b) from (T.cell(i) t0, T.cell(i + 1) t1, A.cell(i) a) {
    b = t0 + t1 * a;
  }
}
"""

# A two-deep chain of intermediates: fuse_transform must fuse end-to-end.
CHAIN = """
transform Chain
from A[n]
through T1[n], T2[n]
to B[n]
{
  to (T1.cell(i) t) from (A.cell(i) a) { t = a + 1.0; }
  to (T2.cell(i) u) from (T1.cell(i) t) { u = t * 2.0; }
  to (B.cell(i) b) from (T2.cell(i) u) { b = u - 3.0; }
}
"""

ROLLING = """
transform Rolling
from A[n]
through S[n]
to B[n]
{
  primary to (S.cell(0) s) from (A.cell(0) a) { s = a; }
  to (S.cell(i) s) from (A.cell(i) a, S.cell(i - 1) prev) { s = a + prev; }
  to (B.cell(i) b) from (S.cell(i) s) { b = s; }
}
"""

HEAT = """
transform Heat
from A[n]
to B[n]
through U<0..k>[n]
{
  to (U.cell(0, i) u) from (A.cell(i) a) { u = a; }
  to (U.cell(t, i) u)
  from (U.cell(t-1, i-1) l, U.cell(t-1, i) m, U.cell(t-1, i+1) r)
  {
    u = (l + 2 * m + r) / 4;
  }
  secondary to (U.cell(t, i) u) from (U.cell(t-1, i) m) { u = m; }
  to (B.cell(i) b) from (U.cell(k, i) u) { b = u; }
}
"""


def compiled(source, name):
    return compile_program(source).transform(name)


def run_bytes(transform, inputs, config=None, sizes=None):
    result = transform.run(
        {k: v.copy() for k, v in inputs.items()}, config, sizes=sizes
    )
    return {
        name: matrix.data.tobytes() for name, matrix in result.outputs.items()
    }


# -- apply_fusion structure ------------------------------------------------


class TestApplyFusion:
    def test_pipe_fuses_to_one_rule(self):
        transform = compiled(PIPE, "Pipe")
        (cand,) = fusion_candidates(transform, REWRITE_BUDGET)
        fused_ir = apply_fusion(transform.ir, cand)
        assert "T" not in fused_ir.matrices
        assert len(fused_ir.rules) == 1
        (rule,) = fused_ir.rules
        assert rule.label == "rule1+rule0"
        assert rule.rule_id == 0
        # The only read left is A, at the producer's coordinates.
        assert [reg.matrix for reg in rule.from_regions] == ["A"]
        # The inlined body: b = (a * 2.0 + 1.0) * 1.5 - 0.5.
        (stmt,) = rule.body
        assert isinstance(stmt, ast.Assign) and stmt.op == "="
        names = []
        stmt.value._collect_names(names)
        assert set(names) == {"a"}

    def test_work_model_accounts_for_both_rules(self):
        transform = compiled(PIPE, "Pipe")
        (cand,) = fusion_candidates(transform, REWRITE_BUDGET)
        fused_ir = apply_fusion(transform.ir, cand)
        producer, consumer = transform.ir.rules
        assert fused_ir.rules[0].base_work == (
            producer.base_work + consumer.base_work
        )

    def test_bind_collisions_get_fresh_names(self):
        transform = compiled(STENCIL, "Stencil")
        (cand,) = fusion_candidates(transform, REWRITE_BUDGET)
        fused_ir = apply_fusion(transform.ir, cand)
        (rule,) = fused_ir.rules
        binds = [reg.bind_name for reg in rule.from_regions]
        assert len(binds) == len(set(binds)), "renaming must avoid collisions"
        # Two T reads → two inlined copies of the producer's A read, plus
        # the consumer's own A read.
        assert [reg.matrix for reg in rule.from_regions].count("A") == 3

    def test_non_legal_candidate_raises(self):
        transform = compiled(ROLLING, "Rolling")
        (cand,) = fusion_candidates(transform, REWRITE_BUDGET)
        assert cand.status == "blocked"
        with pytest.raises(FusionError, match="blocked"):
            apply_fusion(transform.ir, cand)


# -- fuse_transform / build_fused_variant ----------------------------------


class TestFuseTransform:
    def test_fused_matches_unfused(self):
        transform = compiled(PIPE, "Pipe")
        fused, applied = fuse_transform(transform)
        assert len(applied) == 1 and applied[0].matrix == "T"
        rng = np.random.default_rng(0)
        inputs = {"A": rng.uniform(-4.0, 4.0, (5, 7))}
        assert run_bytes(fused, inputs) == run_bytes(transform, inputs)

    def test_chain_fuses_end_to_end(self):
        transform = compiled(CHAIN, "Chain")
        fused, applied = fuse_transform(transform)
        assert [cand.matrix for cand in applied] == ["T1", "T2"]
        assert len(fused.ir.rules) == 1
        rng = np.random.default_rng(1)
        inputs = {"A": rng.uniform(-2.0, 2.0, 9)}
        assert run_bytes(fused, inputs) == run_bytes(transform, inputs)

    def test_blocked_transform_is_untouched(self):
        transform = compiled(ROLLING, "Rolling")
        fused, applied = fuse_transform(transform)
        assert applied == [] and fused is transform

    def test_build_fused_variant_none_when_blocked(self):
        assert build_fused_variant(compiled(ROLLING, "Rolling")) is None

    def test_build_fused_variant_verified(self):
        variant = build_fused_variant(compiled(PIPE, "Pipe"))
        assert variant is not None
        assert len(variant.ir.rules) == 1
        # A fused variant never re-fuses itself.
        assert variant.fused_variant() is None


# -- engine dispatch through __fuse__ --------------------------------------


class TestEngineDispatch:
    def test_has_fusion(self):
        assert compiled(PIPE, "Pipe").has_fusion()
        assert not compiled(ROLLING, "Rolling").has_fusion()

    def test_fused_variant_cached(self):
        transform = compiled(PIPE, "Pipe")
        assert transform.fused_variant() is transform.fused_variant()

    def test_fuse_tunable_dispatches(self):
        transform = compiled(PIPE, "Pipe")
        rng = np.random.default_rng(2)
        inputs = {"A": rng.uniform(-4.0, 4.0, (6, 4))}
        baseline = run_bytes(transform, inputs)
        config = ChoiceConfig()
        config.set_tunable("Pipe.__fuse__", 1)
        assert run_bytes(transform, inputs, config) == baseline
        # The fused run does one traversal: half the rule applications.
        unfused = transform.run(
            {k: v.copy() for k, v in inputs.items()}
        )
        fused = transform.run(
            {k: v.copy() for k, v in inputs.items()}, config
        )
        assert fused.rule_applications < unfused.rule_applications

    def test_fuse_tunable_noop_when_blocked(self):
        transform = compiled(ROLLING, "Rolling")
        rng = np.random.default_rng(3)
        inputs = {"A": rng.uniform(-1.0, 1.0, 8)}
        baseline = run_bytes(transform, inputs)
        config = ChoiceConfig()
        config.set_tunable("Rolling.__fuse__", 1)
        assert run_bytes(transform, inputs, config) == baseline

    def test_fuse_knob_round_trips_through_config(self):
        config = ChoiceConfig()
        config.set_tunable("Pipe.__fuse__", 1)
        assert config.fuse_enabled("Pipe") == 1
        assert ChoiceConfig().fuse_enabled("Pipe") == 0

    def test_tuner_searches_the_fuse_knob(self):
        """End to end: a short genetic tuning run on a fusible pipeline
        must probe __fuse__ (a 0-based binary range — regression for the
        n-ary search rejecting lo=0) and record a value in the config."""
        from repro.autotuner import Evaluator, GeneticTuner
        from repro.runtime import MACHINES

        program = compile_program(PIPE)

        def inputs(size, rng):
            return [
                np.array(
                    [
                        [rng.uniform(-1, 1) for _ in range(size)]
                        for _ in range(size)
                    ]
                )
            ]

        evaluator = Evaluator(program, "Pipe", inputs, MACHINES["xeon8"])
        tuner = GeneticTuner(
            evaluator,
            min_size=8,
            max_size=16,
            population_size=4,
            tunable_rounds=1,
            refine_passes=0,
        )
        result = tuner.tune()
        assert "Pipe.__fuse__" in result.config.tunables


# -- the unparser ----------------------------------------------------------


class TestUnparse:
    def test_pipe_round_trips(self):
        transform = compiled(PIPE, "Pipe")
        source = transform_src(transform.ir)
        reparsed = compile_program(source).transform("Pipe")
        rng = np.random.default_rng(4)
        inputs = {"A": rng.uniform(-4.0, 4.0, (5, 5))}
        assert run_bytes(reparsed, inputs) == run_bytes(transform, inputs)

    def test_fused_source_round_trips(self):
        transform = compiled(PIPE, "Pipe")
        fused, _ = fuse_transform(transform)
        source = program_src([fused.ir])
        reparsed = compile_program(source).transform("Pipe")
        rng = np.random.default_rng(5)
        inputs = {"A": rng.uniform(-4.0, 4.0, (4, 6))}
        assert run_bytes(reparsed, inputs) == run_bytes(transform, inputs)

    def test_versioned_priority_program_round_trips(self):
        # Versions are emitted desugared (U[k + 1, n]) and priorities are
        # preserved; behavior must survive the round trip.
        transform = compiled(HEAT, "Heat")
        source = transform_src(transform.ir)
        assert "secondary" in source
        reparsed = compile_program(source).transform("Heat")
        rng = np.random.default_rng(6)
        inputs = {"A": rng.uniform(-1.0, 1.0, 10)}
        assert run_bytes(
            reparsed, inputs, sizes={"k": 3}
        ) == run_bytes(transform, inputs, sizes={"k": 3})

    def test_where_clause_round_trips(self):
        source = """
transform Clamp
from A[n]
to B[n]
{
  to (B.cell(i) b) from (A.cell(i) a) where i > 0, i < n - 1 { b = a; }
  secondary to (B.cell(i) b) from (A.cell(i) a) { b = 0.0 - a; }
}
"""
        transform = compiled(source, "Clamp")
        reparsed = compile_program(transform_src(transform.ir)).transform(
            "Clamp"
        )
        rng = np.random.default_rng(7)
        inputs = {"A": rng.uniform(-2.0, 2.0, 9)}
        assert run_bytes(reparsed, inputs) == run_bytes(transform, inputs)
