"""Differential property test: the three leaf paths are interchangeable.

Hypothesis generates random straight-line elementwise programs (and
drives the RollingSum choice space); every program runs under the
interpreter, closure, and vector leaf paths and must produce

* bit-identical outputs (exact ``tobytes`` equality, no tolerance), and
* identical observable write sets — output/through matrices are
  sentinel-filled at allocation, so "written" is detectable per cell.
"""

from contextlib import contextmanager

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import ChoiceConfig, Selector, compile_program
from repro.runtime.matrix import Matrix

#: A value no generated program can produce from the bounded inputs.
SENTINEL = -987654321.25

LEAF_PATHS = (0, 1, 2)

_OPS = ("+", "-", "*")
_CALLS = ("min", "max", "abs")


@contextmanager
def sentinel_alloc():
    """Allocate output/through matrices filled with SENTINEL instead of
    zeros, making the write set observable.  A context manager rather
    than a pytest fixture: hypothesis re-runs the test body, not
    function-scoped fixtures."""

    def filled(shape, name="", dtype=np.float64):
        return Matrix(np.full(tuple(shape), SENTINEL, dtype=dtype), name)

    original = Matrix.zeros
    Matrix.zeros = staticmethod(filled)
    try:
        yield
    finally:
        Matrix.zeros = original


def _run_paths(source, transform_name, inputs, choices=None):
    """(output bytes, write-set bytes) per leaf path."""
    program = compile_program(source)
    transform = program.transform(transform_name)
    observed = {}
    for leaf in LEAF_PATHS:
        config = ChoiceConfig()
        config.set_tunable(f"{transform_name}.__leaf_path__", leaf)
        for site, option in (choices or {}).items():
            config.set_choice(site, Selector.static(option))
        with sentinel_alloc():
            result = transform.run(
                {k: v.copy() for k, v in inputs.items()}, config
            )
        outputs = {}
        writes = {}
        for name, matrix in result.outputs.items():
            outputs[name] = matrix.data.tobytes()
            writes[name] = (matrix.data != SENTINEL).tobytes()
        observed[leaf] = (outputs, writes)
    return observed


def _assert_paths_agree(observed):
    reference = observed[0]
    for leaf in LEAF_PATHS[1:]:
        assert observed[leaf][0] == reference[0], (
            f"leaf path {leaf}: outputs differ from interpreter"
        )
        assert observed[leaf][1] == reference[1], (
            f"leaf path {leaf}: write sets differ from interpreter"
        )


# -- random elementwise programs ------------------------------------------


@st.composite
def elementwise_programs(draw):
    """A random straight-line elementwise 2-D stencil program."""
    n_reads = draw(st.integers(1, 3))
    reads = []
    for idx in range(n_reads):
        dx = draw(st.integers(0, 2))
        dy = draw(st.integers(0, 2))
        reads.append((f"r{idx}", dx, dy))
    froms = ", ".join(
        f"A.cell(x+{dx}, y+{dy}) {name}" if dx or dy else f"A.cell(x, y) {name}"
        for name, dx, dy in reads
    )

    def expr(depth):
        if depth == 0 or draw(st.booleans()):
            leaf = draw(
                st.one_of(
                    st.sampled_from([name for name, _, _ in reads]),
                    st.floats(-2, 2, allow_nan=False).map(
                        lambda f: repr(round(f, 3))
                    ),
                )
            )
            return leaf
        kind = draw(st.sampled_from(("binop", "call", "neg")))
        if kind == "binop":
            op = draw(st.sampled_from(_OPS))
            return f"({expr(depth - 1)} {op} {expr(depth - 1)})"
        if kind == "neg":
            return f"(-{expr(depth - 1)})"
        call = draw(st.sampled_from(_CALLS))
        if call == "abs":
            return f"abs({expr(depth - 1)})"
        return f"{call}({expr(depth - 1)}, {expr(depth - 1)})"

    statements = [f"b = {expr(2)};"]
    if draw(st.booleans()):
        op = draw(st.sampled_from(("+=", "-=", "*=")))
        statements.append(f"b {op} {expr(1)};")
    body = " ".join(statements)
    source = (
        "transform Stencil\n"
        "from A[n+2, m+2]\n"
        "to B[n, m]\n"
        "{\n"
        f"  to (B.cell(x, y) b) from ({froms}) {{ {body} }}\n"
        "}\n"
    )
    return source


@settings(max_examples=30, deadline=None)
@given(
    source=elementwise_programs(),
    n=st.integers(1, 6),
    m=st.integers(1, 6),
    seed=st.integers(0, 2**16),
)
def test_random_elementwise_programs_agree(source, n, m, seed):
    rng = np.random.default_rng(seed)
    inputs = {"A": rng.uniform(-4.0, 4.0, (n + 2, m + 2))}
    observed = _run_paths(source, "Stencil", inputs)
    _assert_paths_agree(observed)


# -- the RollingSum choice space ------------------------------------------

ROLLINGSUM = """
transform RollingSum
from A[n]
to B[n]
{
  to (B.cell(i) b) from (A.region(0, i+1) in) { b = sum(in); }
  to (B.cell(i) b) from (A.cell(i) a, B.cell(i-1) leftSum) { b = a + leftSum; }
}
"""


@settings(max_examples=20, deadline=None)
@given(
    option=st.integers(0, 1),
    n=st.integers(1, 24),
    seed=st.integers(0, 2**16),
)
def test_rollingsum_choices_agree(option, n, seed):
    """Both algorithmic choices (region reduction and sequential chain)
    agree across all leaf paths at every size."""
    rng = np.random.default_rng(seed)
    inputs = {"A": rng.uniform(-1.0, 1.0, n)}
    observed = _run_paths(
        ROLLINGSUM,
        "RollingSum",
        inputs,
        choices={"RollingSum.B.0": 0, "RollingSum.B.1": option},
    )
    _assert_paths_agree(observed)


# -- windowed reads (region bindings at varying offsets) -------------------


@settings(max_examples=20, deadline=None)
@given(
    lo=st.integers(0, 2),
    width=st.integers(1, 3),
    n=st.integers(4, 10),
    seed=st.integers(0, 2**16),
)
def test_window_programs_agree(lo, width, n, seed):
    """Region-reduction windows (closure path; vector demotes) stay
    bit-identical under every leaf path."""
    hi = lo + width
    source = (
        "transform Window\n"
        f"from A[n + {hi}]\n"
        "to B[n]\n"
        "{\n"
        f"  to (B.cell(i) b) from (A.region(i + {lo}, i + {hi}) a)"
        " { b = sum(a); }\n"
        "}\n"
    )
    rng = np.random.default_rng(seed)
    inputs = {"A": rng.uniform(-2.0, 2.0, n + hi)}
    observed = _run_paths(source, "Window", inputs)
    _assert_paths_agree(observed)
