"""Tests for the MatrixMultiply benchmark application."""

import numpy as np
import pytest

from repro.apps import matmul as mm_app
from repro.autotuner import Evaluator, check_consistency
from repro.compiler import ChoiceConfig, Selector
from repro.runtime import MACHINES


@pytest.fixture(scope="module")
def program():
    return mm_app.build_program()


def reference(a, b):
    return np.einsum("ky,xk->xy", a, b)


def static_config(option):
    config = ChoiceConfig()
    config.set_choice(mm_app.MM_SITE, Selector.static(option))
    return config


def hybrid_config(option, base_n=8):
    """Recursive option above base_n, transpose below."""
    config = ChoiceConfig()
    config.set_choice(
        mm_app.MM_SITE,
        Selector(((mm_app.size_metric(base_n) + 1, 2), (None, option))),
    )
    return config


class TestCorrectness:
    @pytest.mark.parametrize("option", [0, 1, 2])
    def test_flat_variants(self, program, option):
        rng = np.random.default_rng(option)
        a = rng.standard_normal((12, 12))
        b = rng.standard_normal((12, 12))
        result = program.transform("MatrixMultiply").run([a, b], static_config(option))
        np.testing.assert_allclose(result.output("AB"), reference(a, b), atol=1e-10)

    @pytest.mark.parametrize("option", [3, 4, 5, 6])
    def test_recursive_variants(self, program, option):
        rng = np.random.default_rng(option)
        a = rng.standard_normal((32, 32))
        b = rng.standard_normal((32, 32))
        result = program.transform("MatrixMultiply").run(
            [a, b], hybrid_config(option)
        )
        np.testing.assert_allclose(result.output("AB"), reference(a, b), atol=1e-9)

    def test_strassen_odd_size_falls_back(self, program):
        rng = np.random.default_rng(9)
        a = rng.standard_normal((15, 15))
        b = rng.standard_normal((15, 15))
        result = program.transform("MatrixMultiply").run([a, b], static_config(6))
        np.testing.assert_allclose(result.output("AB"), reference(a, b), atol=1e-10)

    def test_nonsquare(self, program):
        rng = np.random.default_rng(10)
        a = rng.standard_normal((6, 3))  # c=6, h=3
        b = rng.standard_normal((9, 6))  # w=9, c=6
        for option in (0, 1, 2):
            result = program.transform("MatrixMultiply").run(
                [a, b], static_config(option)
            )
            np.testing.assert_allclose(
                result.output("AB"), reference(a, b), atol=1e-10
            )

    def test_consistency_harness(self, program):
        compared = check_consistency(
            program,
            "MatrixMultiply",
            mm_app.input_generator,
            sizes=[4, 16],
            threshold=1e-8,
        )
        assert all(count >= 3 for count in compared.values())

    def test_one_by_one(self, program):
        result = program.transform("MatrixMultiply").run(
            [np.array([[3.0]]), np.array([[4.0]])], static_config(0)
        )
        np.testing.assert_allclose(result.output("AB"), [[12.0]])


class TestCostModel:
    def time_of(self, program, config, n, machine="xeon1"):
        ev = Evaluator(
            program, "MatrixMultiply", mm_app.input_generator, MACHINES[machine]
        )
        return ev.time(config, n)

    def test_transpose_beats_basic(self, program):
        assert self.time_of(program, static_config(2), 64) < self.time_of(
            program, static_config(0), 64
        )

    def test_blocking_between_basic_and_transpose(self, program):
        basic = self.time_of(program, static_config(0), 64)
        blocked = self.time_of(program, static_config(1), 64)
        transpose = self.time_of(program, static_config(2), 64)
        assert transpose < blocked < basic

    def test_strassen_asymptotics(self, program):
        """Strassen's 7-multiply recursion must beat the O(n^3) variants
        at large sizes (sequentially, where parallelism can't hide it)."""
        strassen = hybrid_config(6, base_n=16)
        transpose = static_config(2)
        n = 256
        assert self.time_of(program, strassen, n) < self.time_of(
            program, transpose, n
        )

    def test_recursive_scales_on_8_cores(self, program):
        config = hybrid_config(4, base_n=16)
        ev1 = Evaluator(program, "MatrixMultiply", mm_app.input_generator, MACHINES["xeon1"])
        ev8 = Evaluator(program, "MatrixMultiply", mm_app.input_generator, MACHINES["xeon8"])
        speedup = ev1.time(config, 128) / ev8.time(config, 128)
        assert speedup > 2.0
