"""Chaos tests: the serving invariant under injected fault schedules.

Each test drives :mod:`repro.faults.serve_harness` — a live daemon, a
deterministic request schedule, retrying clients — and asserts that
every request either got the byte-identical fault-free response or
exactly one well-formed structured error, with no hung threads; plus
the kill-and-restart durability checks for the artifact store.
"""

import tempfile

import pytest

from repro.faults import FaultInjector
from repro.faults.serve_harness import (
    COMBINED_INJECT,
    KIND_INJECTS,
    SCALE,
    check_serve_resilience,
    check_store_recovery,
    run_serve_chaos,
)
from repro.serve import ServeApp, ServeError


@pytest.mark.parametrize(
    "kind", ["conn-drop", "slow-handler", "shed-storm", "drain-race"]
)
def test_single_kind_invariant(kind):
    report = check_serve_resilience(
        f"{KIND_INJECTS[kind]},seed=3", requests=9, workers=3
    )
    assert report.ok
    assert report.parity + report.structured_errors == report.requests
    assert not report.hung_threads


def test_combined_plan_keeps_parity_majority():
    report = check_serve_resilience(f"{COMBINED_INJECT},seed=2", requests=12)
    assert report.ok
    # The combined plan's probabilities leave most requests recovering
    # to byte parity; sheds during an injected drain are the rest.
    assert report.parity >= 1
    assert report.client_counters.get("serve.retry.attempts", 0) >= 1


def test_store_recovery_under_injected_io_failures():
    report = check_store_recovery(f"{KIND_INJECTS['store-io-fail']},seed=5")
    assert report.ok
    assert report.parity == report.requests  # every publish finally landed
    assert report.server_counters.get("serve.store.write_failures", 0) >= 1


def test_kill_and_restart_never_regresses_versions():
    """An unacknowledged (failed) publish must be invisible after a
    crash; a retried publish lands durably and survives the restart."""
    from repro.compiler import ChoiceConfig

    injector = FaultInjector.parse("store-io-fail:1x1")
    with tempfile.TemporaryDirectory() as root:
        app = ServeApp(store_dir=root, injector=injector)
        phash = app.compile({"source": SCALE})["program"]
        with pytest.raises(ServeError) as excinfo:
            app.publish_config(
                phash, "xeon8", "any", ChoiceConfig(), attempt=0
            )
        assert excinfo.value.code == "store_io"
        app.close()  # simulated crash after the failed, unacked publish

        restarted = ServeApp(store_dir=root, injector=injector)
        assert (
            restarted.registry.current_version(phash, "xeon8", "any") == 0
        )
        # The retry contract: attempt 1 lands durably at version 1.
        entry = restarted.publish_config(
            phash, "xeon8", "any", ChoiceConfig(), attempt=1
        )
        assert entry.version == 1
        restarted.close()

        recovered = ServeApp(store_dir=root)
        assert (
            recovered.registry.current_version(phash, "xeon8", "any") == 1
        )
        recovered.close()


def test_run_serve_chaos_report_shape(tmp_path):
    report_path = tmp_path / "chaos.json"
    summary = run_serve_chaos(
        [4], requests=6, report_path=str(report_path)
    )
    assert summary["ok"] is True
    # One run per fault kind plus the combined plan.
    assert len(summary["runs"]) == 6
    assert report_path.exists()
