"""Differential property test: batched execution ≡ serial execution.

Hypothesis generates random straight-line elementwise programs and
random request mixes (sizes, configurations, leaf paths); every mix
runs once through :class:`repro.batch.BatchEngine` and once as
per-request serial ``CompiledTransform.run`` calls, and the two must
produce **bit-identical** outputs (exact ``tobytes`` equality) and
identical write sets — the same contract the leaf paths satisfy among
themselves (``test_engine_fast_diff``), lifted over the batch axis.

Error propagation is part of the contract: a request the serial engine
rejects (division by zero, malformed inputs) must come back from the
batch engine with the *same* exception type and message, without
poisoning the other requests in its bucket.
"""

from contextlib import contextmanager

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import BatchEngine
from repro.compiler import ChoiceConfig, Selector, compile_program
from repro.runtime.matrix import Matrix

#: A value no generated program can produce from the bounded inputs.
SENTINEL = -987654321.25

_OPS = ("+", "-", "*")
_CALLS = ("min", "max", "abs")


@contextmanager
def sentinel_alloc():
    """Sentinel-fill output/through allocation so write sets are
    observable (same trick as test_engine_fast_diff; covers the batched
    allocation path too, which also goes through ``Matrix.zeros``)."""

    def filled(shape, name="", dtype=np.float64):
        return Matrix(np.full(tuple(shape), SENTINEL, dtype=dtype), name)

    original = Matrix.zeros
    Matrix.zeros = staticmethod(filled)
    try:
        yield
    finally:
        Matrix.zeros = original


def _leaf_config(transform_name, leaf):
    config = ChoiceConfig()
    config.set_tunable(f"{transform_name}.__leaf_path__", leaf)
    return config


def _signature(outputs):
    return {
        name: (matrix.data.tobytes(), (matrix.data != SENTINEL).tobytes())
        for name, matrix in outputs.items()
    }


def _assert_batch_matches_serial(transform, requests):
    """``requests``: (inputs dict, config) pairs.  Runs the mix batched
    and serially; asserts identical outputs/write sets/errors per
    request."""
    engine = BatchEngine()
    for inputs, config in requests:
        engine.submit(
            transform, {k: v.copy() for k, v in inputs.items()}, config
        )
    with sentinel_alloc():
        batched = engine.gather()

    assert len(batched) == len(requests)
    for position, ((inputs, config), result) in enumerate(
        zip(requests, batched)
    ):
        assert result.request_id == position
        serial_error = None
        serial_outputs = None
        with sentinel_alloc():
            try:
                serial_outputs = transform.run(
                    {k: v.copy() for k, v in inputs.items()}, config
                ).outputs
            except Exception as error:
                serial_error = error
        if serial_error is not None:
            assert not result.ok, (
                f"request {position}: serial raised "
                f"{serial_error!r}, batch succeeded"
            )
            assert type(result.error) is type(serial_error)
            assert str(result.error) == str(serial_error)
        else:
            assert result.ok, (
                f"request {position}: batch raised {result.error!r}, "
                f"serial succeeded"
            )
            assert _signature(result.outputs) == _signature(serial_outputs)


# -- random elementwise programs × random request mixes ---------------------


@st.composite
def elementwise_programs(draw):
    """A random straight-line elementwise 2-D stencil program."""
    n_reads = draw(st.integers(1, 3))
    reads = []
    for idx in range(n_reads):
        dx = draw(st.integers(0, 2))
        dy = draw(st.integers(0, 2))
        reads.append((f"r{idx}", dx, dy))
    froms = ", ".join(
        f"A.cell(x+{dx}, y+{dy}) {name}" if dx or dy else f"A.cell(x, y) {name}"
        for name, dx, dy in reads
    )

    def expr(depth):
        if depth == 0 or draw(st.booleans()):
            return draw(
                st.one_of(
                    st.sampled_from([name for name, _, _ in reads]),
                    st.floats(-2, 2, allow_nan=False).map(
                        lambda f: repr(round(f, 3))
                    ),
                )
            )
        kind = draw(st.sampled_from(("binop", "call", "neg")))
        if kind == "binop":
            op = draw(st.sampled_from(_OPS))
            return f"({expr(depth - 1)} {op} {expr(depth - 1)})"
        if kind == "neg":
            return f"(-{expr(depth - 1)})"
        call = draw(st.sampled_from(_CALLS))
        if call == "abs":
            return f"abs({expr(depth - 1)})"
        return f"{call}({expr(depth - 1)}, {expr(depth - 1)})"

    statements = [f"b = {expr(2)};"]
    if draw(st.booleans()):
        op = draw(st.sampled_from(("+=", "-=", "*=")))
        statements.append(f"b {op} {expr(1)};")
    body = " ".join(statements)
    return (
        "transform Stencil\n"
        "from A[n+2, m+2]\n"
        "to B[n, m]\n"
        "{\n"
        f"  to (B.cell(x, y) b) from ({froms}) {{ {body} }}\n"
        "}\n"
    )


@st.composite
def request_mixes(draw):
    """Random heterogeneous request mixes: a handful of (n, m) shapes,
    each repeated a few times, each request under a random leaf path —
    so one mix spans several buckets and several configurations."""
    shapes = draw(
        st.lists(
            st.tuples(st.integers(1, 5), st.integers(1, 5)),
            min_size=1,
            max_size=3,
            unique=True,
        )
    )
    mix = []
    for shape in shapes:
        repeats = draw(st.integers(1, 3))
        for _ in range(repeats):
            leaf = draw(st.integers(0, 2))
            mix.append((shape, leaf))
    draw(st.randoms(use_true_random=False)).shuffle(mix)
    return mix


@settings(max_examples=25, deadline=None)
@given(
    source=elementwise_programs(),
    mix=request_mixes(),
    seed=st.integers(0, 2**16),
)
def test_random_mixes_batch_equals_serial(source, mix, seed):
    program = compile_program(source)
    transform = program.transform("Stencil")
    rng = np.random.default_rng(seed)
    requests = []
    for (n, m), leaf in mix:
        inputs = {"A": rng.uniform(-4.0, 4.0, (n + 2, m + 2))}
        requests.append((inputs, _leaf_config("Stencil", leaf)))
    _assert_batch_matches_serial(transform, requests)


# -- the RollingSum choice space (per-request fallback path) ----------------

ROLLINGSUM = """
transform RollingSum
from A[n]
to B[n]
{
  to (B.cell(i) b) from (A.region(0, i+1) in) { b = sum(in); }
  to (B.cell(i) b) from (A.cell(i) a, B.cell(i-1) leftSum) { b = a + leftSum; }
}
"""


@settings(max_examples=15, deadline=None)
@given(
    options=st.lists(st.integers(0, 1), min_size=1, max_size=6),
    n=st.integers(1, 12),
    seed=st.integers(0, 2**16),
)
def test_rollingsum_mix_batch_equals_serial(options, n, seed):
    """RollingSum is not stackable (region reduction); every request
    takes the serial fallback inside the engine and must still match a
    direct serial run exactly, across both algorithmic choices."""
    program = compile_program(ROLLINGSUM)
    transform = program.transform("RollingSum")
    rng = np.random.default_rng(seed)
    requests = []
    for option in options:
        config = ChoiceConfig()
        config.set_choice("RollingSum.B.0", Selector.static(0))
        config.set_choice("RollingSum.B.1", Selector.static(option))
        requests.append(({"A": rng.uniform(-1.0, 1.0, n)}, config))
    _assert_batch_matches_serial(transform, requests)


# -- error propagation: one bad request must not poison its bucket ----------

DIVIDE = """
transform Divide
from A[n], D[n]
to B[n]
{
  to (B.cell(i) b) from (A.cell(i) a, D.cell(i) d) { b = a / d; }
}
"""


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(1, 8),
    bad_positions=st.sets(st.integers(0, 5), max_size=3),
    total=st.integers(1, 6),
    seed=st.integers(0, 2**16),
)
def test_division_by_zero_isolated_to_failing_requests(
    n, bad_positions, total, seed
):
    """Requests whose divisor contains a zero raise exactly the serial
    engine's error; same-bucket neighbours still get bit-identical
    results (the stacked sweep demotes to per-request execution)."""
    program = compile_program(DIVIDE)
    transform = program.transform("Divide")
    rng = np.random.default_rng(seed)
    requests = []
    for position in range(total):
        divisor = rng.uniform(1.0, 2.0, n)
        if position in bad_positions:
            divisor[rng.integers(0, n)] = 0.0
        requests.append(
            (
                {"A": rng.uniform(-2.0, 2.0, n), "D": divisor},
                ChoiceConfig(),
            )
        )
    _assert_batch_matches_serial(transform, requests)


def test_malformed_request_is_isolated():
    """A request with a missing input buckets alone, reports the serial
    engine's exact error, and leaves its well-formed neighbours stacked."""
    program = compile_program(DIVIDE)
    transform = program.transform("Divide")
    rng = np.random.default_rng(3)
    good = {"A": rng.uniform(-1, 1, 4), "D": rng.uniform(1, 2, 4)}

    engine = BatchEngine()
    engine.submit(transform, good)
    engine.submit(transform, {"A": good["A"]})  # missing D
    engine.submit(transform, good)
    first, bad, last = engine.gather()

    assert first.ok and last.ok and first.stacked and last.stacked
    assert not bad.ok
    try:
        transform.run({"A": good["A"].copy()})
    except Exception as serial_error:
        assert type(bad.error) is type(serial_error)
        assert str(bad.error) == str(serial_error)
    reference = transform.run({k: v.copy() for k, v in good.items()})
    assert first.output().tobytes() == reference.output().tobytes()
    assert last.output().tobytes() == reference.output().tobytes()
