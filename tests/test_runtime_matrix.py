"""Tests for matrix storage and region views."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.runtime import Matrix, MatrixView


class TestMatrix:
    def test_zeros(self):
        m = Matrix.zeros((3, 4))
        assert m.shape == (3, 4)
        assert m.ndim == 2
        assert np.all(m.data == 0)

    def test_from_array_shares_buffer(self):
        arr = np.arange(6, dtype=np.float64)
        m = Matrix.from_array(arr)
        m.data[0] = 42
        assert arr[0] == 42

    def test_scalar(self):
        m = Matrix.scalar(7.0)
        assert m.ndim == 0
        assert m.whole().value == 7.0

    def test_whole_covers_all(self):
        m = Matrix.zeros((2, 5))
        assert m.whole().shape == (2, 5)


class TestCellAccess:
    def test_read_write(self):
        m = Matrix.zeros((4,))
        view = m.whole()
        view.cell(2).set(9.0)
        assert view.cell(2).value == 9.0
        assert m.data[2] == 9.0

    def test_cell_is_view_not_copy(self):
        m = Matrix.zeros((3, 3))
        c = m.cell(1, 2)
        m.data[1, 2] = 5.0
        assert c.value == 5.0

    def test_getset_item(self):
        m = Matrix.zeros((3, 3))
        view = m.whole()
        view[1, 1] = 3.0
        assert view[1, 1] == 3.0
        one_d = Matrix.zeros((5,)).whole()
        one_d[4] = 2.0
        assert one_d[4] == 2.0

    def test_out_of_bounds(self):
        view = Matrix.zeros((3,)).whole()
        with pytest.raises(IndexError):
            view.cell(3)

    def test_wrong_arity(self):
        view = Matrix.zeros((3, 3)).whole()
        with pytest.raises(ValueError):
            view.cell(1)

    def test_value_on_nonscalar_rejected(self):
        view = Matrix.zeros((3,)).whole()
        with pytest.raises(ValueError):
            _ = view.value


class TestRegion:
    def test_region_shape(self):
        view = Matrix.zeros((8, 8)).whole()
        sub = view.region(0, 0, 4, 8)
        assert sub.shape == (4, 8)

    def test_region_relative_coordinates(self):
        m = Matrix.zeros((8,))
        sub = m.region(3, 8)
        sub.cell(0).set(1.0)
        assert m.data[3] == 1.0

    def test_nested_regions_compose(self):
        m = Matrix.zeros((10,))
        inner = m.region(2, 9).region(1, 5)
        inner.cell(0).set(7.0)
        assert m.data[3] == 7.0

    def test_region_out_of_bounds(self):
        view = Matrix.zeros((4, 4)).whole()
        with pytest.raises(IndexError):
            view.region(0, 0, 5, 4)

    def test_region_wrong_arity(self):
        view = Matrix.zeros((4, 4)).whole()
        with pytest.raises(ValueError):
            view.region(0, 4)

    def test_empty_region(self):
        view = Matrix.zeros((4,)).whole()
        assert view.region(2, 2).size == 0


class TestRowColumn:
    def test_row_slices_across_x(self):
        m = Matrix.zeros((3, 2))
        m.data[:, 1] = [10, 11, 12]
        row = m.row(1)
        assert row.shape == (3,)
        assert row.to_numpy().tolist() == [10, 11, 12]

    def test_column_slices_across_y(self):
        m = Matrix.zeros((3, 2))
        m.data[2, :] = [20, 21]
        col = m.column(2)
        assert col.to_numpy().tolist() == [20, 21]

    def test_row_writes_through(self):
        m = Matrix.zeros((3, 2))
        m.row(0).assign([1, 2, 3])
        assert m.data[:, 0].tolist() == [1, 2, 3]

    def test_row_of_region_is_relative(self):
        m = Matrix.zeros((4, 4))
        sub = m.region(1, 1, 4, 4)
        sub.row(0).assign([5, 5, 5])
        assert m.data[1:4, 1].tolist() == [5, 5, 5]

    def test_row_on_1d_rejected(self):
        with pytest.raises(ValueError):
            Matrix.zeros((3,)).whole().row(0)

    def test_slice_axis(self):
        m = Matrix.zeros((2, 3, 4))
        sliced = m.whole().slice_axis(0, 1)
        assert sliced.shape == (3, 4)
        sliced.cell(0, 0).set(6.0)
        assert m.data[1, 0, 0] == 6.0


class TestBulk:
    def test_assign_and_to_numpy(self):
        view = Matrix.zeros((2, 2)).whole()
        view.assign([[1, 2], [3, 4]])
        assert view.to_numpy().tolist() == [[1, 2], [3, 4]]

    def test_copy_from(self):
        src = Matrix.from_array([1.0, 2.0, 3.0]).whole()
        dst = Matrix.zeros((3,)).whole()
        dst.copy_from(src)
        assert dst.to_numpy().tolist() == [1, 2, 3]

    def test_copy_from_shape_mismatch(self):
        with pytest.raises(ValueError):
            Matrix.zeros((2,)).whole().copy_from(Matrix.zeros((3,)).whole())

    def test_iter_cells(self):
        coords = list(Matrix.zeros((2, 2)).whole().iter_cells())
        assert coords == [(0, 0), (0, 1), (1, 0), (1, 1)]


class TestRegionProperties:
    """Property tests for region slicing: 0-d/1-d edges, degenerate and
    negative regions, and aliasing of overlapping sub-regions."""

    @given(st.integers(1, 10), st.data())
    def test_region_shape_matches_bounds(self, extent, data):
        view = Matrix.zeros((extent, extent)).whole()
        lo_x = data.draw(st.integers(0, extent))
        hi_x = data.draw(st.integers(lo_x, extent))
        lo_y = data.draw(st.integers(0, extent))
        hi_y = data.draw(st.integers(lo_y, extent))
        sub = view.region(lo_x, lo_y, hi_x, hi_y)
        assert sub.shape == (hi_x - lo_x, hi_y - lo_y)
        assert sub.size == (hi_x - lo_x) * (hi_y - lo_y)

    @given(st.integers(1, 10), st.integers(0, 9))
    def test_degenerate_region_is_empty_and_harmless(self, extent, at):
        at = min(at, extent)
        view = Matrix.zeros((extent,)).whole()
        empty = view.region(at, at)
        assert empty.size == 0 and empty.shape == (0,)
        empty.assign(np.zeros(0))  # bulk ops on empty views are no-ops
        assert list(empty.iter_cells()) == []
        with pytest.raises(IndexError):
            empty.cell(0)  # no element exists inside a degenerate region

    @given(st.integers(1, 8))
    def test_negative_bounds_rejected(self, extent):
        view = Matrix.zeros((extent,)).whole()
        with pytest.raises(IndexError):
            view.region(-1, extent)
        with pytest.raises(IndexError):
            view.cell(-1)

    @given(st.integers(2, 8), st.data())
    def test_inverted_region_rejected(self, extent, data):
        lo = data.draw(st.integers(1, extent))
        hi = data.draw(st.integers(0, lo - 1))
        view = Matrix.zeros((extent,)).whole()
        with pytest.raises(IndexError):
            view.region(lo, hi)

    @given(st.integers(1, 8), st.data())
    def test_zero_d_cell_roundtrip(self, extent, data):
        index = data.draw(st.integers(0, extent - 1))
        value = data.draw(st.floats(-1e6, 1e6))
        m = Matrix.zeros((extent,))
        cell = m.whole().cell(index)
        assert cell.ndim == 0 and cell.shape == () and cell.size == 1
        cell.set(value)
        assert cell.value == value
        assert m.data[index] == value
        # region() on a 0-d view takes zero bounds and is the identity
        assert cell.region().value == value

    @given(st.integers(2, 10), st.data())
    def test_overlapping_subregions_alias(self, extent, data):
        """Writes through one sub-region are visible through every other
        overlapping sub-region — views share storage, never copy."""
        a_lo = data.draw(st.integers(0, extent - 2))
        a_hi = data.draw(st.integers(a_lo + 2, extent))
        b_lo = data.draw(st.integers(0, extent - 2))
        b_hi = data.draw(st.integers(b_lo + 2, extent))
        m = Matrix.zeros((extent,))
        a, b = m.region(a_lo, a_hi), m.region(b_lo, b_hi)
        overlap_lo, overlap_hi = max(a_lo, b_lo), min(a_hi, b_hi)
        a.assign(np.arange(a_lo, a_hi, dtype=np.float64))
        for k in range(max(0, overlap_hi - overlap_lo)):
            absolute = overlap_lo + k
            assert b[absolute - b_lo] == float(absolute)

    @given(st.integers(2, 8), st.data())
    def test_row_column_alias_matrix_storage(self, extent, data):
        x = data.draw(st.integers(0, extent - 1))
        y = data.draw(st.integers(0, extent - 1))
        m = Matrix.zeros((extent, extent))
        m.row(y).cell(x).set(3.5)
        assert m.column(x)[y] == 3.5
        assert m.data[x, y] == 3.5

    @given(st.integers(1, 10), st.data())
    def test_one_d_full_region_equals_whole(self, extent, data):
        m = Matrix.from_array(
            [data.draw(st.floats(-10, 10)) for _ in range(extent)]
        )
        assert m.region(0, extent).to_numpy().tolist() == m.data.tolist()


@given(
    st.integers(1, 12),
    st.data(),
)
def test_region_composition_matches_numpy(width, data):
    """Nesting regions is equivalent to composed numpy slicing."""
    m = Matrix.from_array(np.arange(width, dtype=np.float64))
    lo1 = data.draw(st.integers(0, width))
    hi1 = data.draw(st.integers(lo1, width))
    sub = m.region(lo1, hi1)
    inner_len = hi1 - lo1
    lo2 = data.draw(st.integers(0, inner_len))
    hi2 = data.draw(st.integers(lo2, inner_len))
    nested = sub.region(lo2, hi2)
    assert nested.to_numpy().tolist() == m.data[lo1 + lo2 : lo1 + hi2].tolist()
