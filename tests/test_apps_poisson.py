"""Tests for the Poisson benchmark: kernels, the Poisson_i/Multigrid_i
transform family, and the accuracy semantics of §4.1."""

import numpy as np
import pytest

from repro.apps import poisson as p_app
from repro.compiler import ChoiceConfig, Selector


@pytest.fixture(scope="module")
def program():
    return p_app.build_program()


def make_problem(n, seed=0):
    rng = np.random.default_rng(seed)
    b = np.zeros((n, n))
    b[1:-1, 1:-1] = rng.standard_normal((n - 2, n - 2))
    x0 = np.zeros((n, n))
    return x0, b


def static_config(bin_index, option):
    config = ChoiceConfig()
    config.set_choice(p_app.poisson_site(bin_index), Selector.static(option))
    return config


class TestKernels:
    def test_operator_matches_dense(self):
        n = 7
        x0, b = make_problem(n, 1)
        rng = np.random.default_rng(2)
        x = np.zeros((n, n))
        x[1:-1, 1:-1] = rng.standard_normal((n - 2, n - 2))
        Lx = p_app.apply_operator(x)
        # Check a few interior points against the stencil definition.
        for i, j in [(1, 1), (3, 4), (5, 5)]:
            expected = (
                4 * x[i, j] - x[i - 1, j] - x[i + 1, j] - x[i, j - 1] - x[i, j + 1]
            )
            assert Lx[i, j] == pytest.approx(expected)

    def test_direct_solve_exact(self):
        n = 17
        _, b = make_problem(n, 3)
        x = p_app.direct_solve(b)
        r = p_app.residual(x, b)
        assert p_app.rms(r[1:-1, 1:-1]) < 1e-10

    def test_jacobi_reduces_residual(self):
        n = 17
        x0, b = make_problem(n, 4)
        x = x0
        r0 = p_app.rms(p_app.residual(x, b)[1:-1, 1:-1])
        for _ in range(50):
            x = p_app.jacobi_sweep(x, b)
        assert p_app.rms(p_app.residual(x, b)[1:-1, 1:-1]) < r0

    def test_sor_faster_than_jacobi(self):
        n = 33
        x0, b = make_problem(n, 5)
        omega = p_app.optimal_sor_weight(n)
        xj = x0.copy()
        xs = x0.copy()
        for _ in range(60):
            xj = p_app.jacobi_sweep(xj, b)
            p_app.sor_sweep(xs, b, omega)
        rj = p_app.rms(p_app.residual(xj, b)[1:-1, 1:-1])
        rs = p_app.rms(p_app.residual(xs, b)[1:-1, 1:-1])
        assert rs < rj

    def test_sor_converges_to_solution(self):
        n = 17
        x0, b = make_problem(n, 6)
        reference = p_app.direct_solve(b)
        x = x0.copy()
        omega = p_app.optimal_sor_weight(n)
        for _ in range(400):
            p_app.sor_sweep(x, b, omega)
        assert np.max(np.abs(x - reference)) < 1e-8

    def test_restrict_interpolate_shapes(self):
        fine = np.random.default_rng(7).standard_normal((17, 17))
        coarse = p_app.restrict_full_weighting(fine)
        assert coarse.shape == (9, 9)
        back = p_app.interpolate(coarse, 17)
        assert back.shape == (17, 17)

    def test_interpolation_preserves_coarse_points(self):
        coarse = np.random.default_rng(8).standard_normal((5, 5))
        fine = p_app.interpolate(coarse, 9)
        np.testing.assert_allclose(fine[::2, ::2], coarse)

    def test_optimal_weight_range(self):
        for n in (5, 17, 129):
            w = p_app.optimal_sor_weight(n)
            assert 1.0 < w < 2.0
        assert p_app.optimal_sor_weight(129) > p_app.optimal_sor_weight(9)


class TestMultigridVCycle:
    def test_vcycle_reduces_error(self, program):
        n = 33
        x0, b = make_problem(n, 9)
        reference = p_app.direct_solve(b)
        mg = program.transform(p_app.multigrid_name(2))
        x = x0
        errors = [p_app.rms((x - reference)[1:-1, 1:-1])]
        for _ in range(4):
            x = mg.run([x, b]).output("Y")
            errors.append(p_app.rms((x - reference)[1:-1, 1:-1]))
        # Each V-cycle should knock the error down substantially.
        assert errors[-1] < errors[0] * 1e-2
        assert all(errors[i + 1] < errors[i] for i in range(len(errors) - 1))

    def test_base_case_grid3(self, program):
        x0, b = make_problem(3, 10)
        mg = program.transform(p_app.multigrid_name(0))
        x = mg.run([x0, b]).output("Y")
        assert p_app.rms(p_app.residual(x, b)[1:-1, 1:-1]) < 1e-12


class TestPoissonFamily:
    @pytest.fixture(scope="class")
    def tuned(self, program):
        """Accuracy-tuned config through grid 33 (paper §4.1.4)."""
        from repro.runtime import MACHINES

        config, history = p_app.tune_accuracy(
            program, MACHINES["xeon8"], max_level=5
        )
        return config, history

    def test_every_bin_hits_its_accuracy_on_training_data(self, tuned):
        _, history = tuned
        for n, bin_index, _, _, accuracy in history:
            assert accuracy >= p_app.ACCURACY_BINS[bin_index] * 0.99

    def test_tuned_config_generalizes_to_fresh_data(self, program, tuned):
        config, _ = tuned
        n = 33
        x0, b = make_problem(n, 11)  # a different instance than training
        for bin_index in (0, 2, 4):
            solver = program.transform(p_app.poisson_name(bin_index))
            result = solver.run([x0, b], config)
            accuracy = p_app.measure_accuracy(x0, result.output("Y"), b)
            # Iteration counts were trained on same-distribution data;
            # allow modest generalization slack.
            assert accuracy >= p_app.ACCURACY_BINS[bin_index] * 0.2

    def test_higher_bins_cost_more_work(self, program, tuned):
        config, _ = tuned
        n = 33
        x0, b = make_problem(n, 12)
        works = []
        for bin_index in (0, 2, 4):
            solver = program.transform(p_app.poisson_name(bin_index))
            works.append(
                solver.run([x0, b], config).graph.total_work()
            )
        assert works[0] < works[1] < works[2]

    def test_direct_choice_is_exact(self, program):
        n = 17
        x0, b = make_problem(n, 13)
        solver = program.transform(p_app.poisson_name(4))
        result = solver.run([x0, b], static_config(4, 0))
        assert p_app.measure_accuracy(x0, result.output("Y"), b) > 1e9

    def test_trained_iteration_counts_are_size_leveled(self, tuned):
        config, history = tuned
        # At least one bin should use iterative choices whose counts
        # were recorded as size-leveled tunables.
        assert config.leveled_tunables, "no leveled tunables recorded"
        labels = {label for _, _, label, _, _ in history}
        assert any(l.startswith("mg") or l == "sor" for l in labels)

    def test_mg_cheaper_than_sor_large_high_accuracy(self, program):
        """The asymptotic story: multigrid O(n) beats SOR O(n^1.5) when
        both are given iteration counts sufficient for accuracy 1e9."""
        n = 65
        x0, b = make_problem(n, 15)
        reference = p_app.true_solution(b)
        target = 1e9

        sweeps = p_app._minimal_sor_sweeps(x0, b, reference, target)
        assert sweeps is not None
        sor_config = static_config(4, 1)
        sor_config.set_tunable("Poisson_4.sorIters", sweeps)
        result_sor = program.transform(p_app.poisson_name(4)).run(
            [x0, b], sor_config
        )
        assert p_app.measure_accuracy(x0, result_sor.output("Y"), b) >= target * 0.99

        mg_config = ChoiceConfig()
        for i in range(len(p_app.ACCURACY_BINS)):
            mg_config.set_choice(
                p_app.poisson_site(i),
                Selector(((p_app.size_metric(9) + 1, 0), (None, 2))),
            )
            mg_config.set_tunable(f"Poisson_{i}.mgAccuracy", 0)
            mg_config.set_tunable(f"Poisson_{i}.mgCycles", 1)
        cycles = p_app._minimal_mg_cycles(
            program, mg_config, 0, x0, b, reference, target
        )
        assert cycles is not None
        mg_config.set_tunable("Poisson_4.mgCycles", cycles)
        result_mg = program.transform(p_app.poisson_name(4)).run(
            [x0, b], mg_config
        )
        assert p_app.measure_accuracy(x0, result_mg.output("Y"), b) >= target * 0.99
        assert result_mg.graph.total_work() < result_sor.graph.total_work()

    def test_direct_cheapest_tiny_grid(self, program):
        bin_index = 4
        x0, b = make_problem(5, 16)
        solver = program.transform(p_app.poisson_name(bin_index))
        work_direct = solver.run([x0, b], static_config(bin_index, 0)).graph.total_work()
        work_sor = solver.run([x0, b], static_config(bin_index, 1)).graph.total_work()
        assert work_direct < work_sor

    def test_accuracy_metric(self):
        n = 9
        x0, b = make_problem(n, 17)
        exact = p_app.true_solution(b)
        assert p_app.measure_accuracy(x0, exact, b) == float("inf")
        assert p_app.measure_accuracy(x0, x0, b) == pytest.approx(1.0)

    def test_grid_sizes(self):
        assert [p_app.grid_size(k) for k in (1, 2, 3)] == [3, 5, 9]
