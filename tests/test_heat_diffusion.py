"""Integration test: a versioned-matrix iterative DSL program.

Heat diffusion is one of the motivating domains in the paper's intro.
This program exercises several language/compiler features *together*:

* matrix versions ``U<0..k>[n]`` (the version range becomes a leading
  dimension, paper §2's ``A<0..n>`` syntax),
* rule priorities handling the boundary corner cases,
* a multi-rule choice (three-point smoothing vs an unrolled two-step
  rule that skips a version level),
* lexicographic iteration ordering: the smoothing stencil reads
  ``(t-1, i-1..i+1)``, which is schedulable by sweeping ``t`` ascending
  with ``i`` free — the dependency pattern that a naive per-dimension
  direction merge would reject.
"""

import pathlib

import numpy as np
import pytest

from repro.compiler import ChoiceConfig, Selector, compile_program
from repro.compiler.config import site_key

HEAT = """
transform Heat
from A[n]
to B[n]
through U<0..k>[n]
{
  // version 0 is the input
  to (U.cell(0, i) u) from (A.cell(i) a) { u = a; }

  // interior smoothing step (reads three cells of the previous version)
  to (U.cell(t, i) u)
  from (U.cell(t-1, i-1) l, U.cell(t-1, i) m, U.cell(t-1, i+1) r)
  {
    u = (l + 2 * m + r) / 4;
  }

  // boundary cells carry forward (corner-case rule, lower priority)
  secondary to (U.cell(t, i) u) from (U.cell(t-1, i) m) { u = m; }

  // the answer is the last version
  to (B.cell(i) b) from (U.cell(k, i) u) { b = u; }
}
"""


def reference(data, steps):
    x = np.array(data, dtype=float)
    for _ in range(steps):
        new = x.copy()
        new[1:-1] = (x[:-2] + 2 * x[1:-1] + x[2:]) / 4
        x = new
    return x


@pytest.fixture(scope="module")
def heat():
    return compile_program(HEAT).transform("Heat")


class TestCompilation:
    def test_version_becomes_leading_dimension(self, heat):
        u = heat.ir.matrices["U"]
        assert u.ndim == 2
        from repro.symbolic import Affine

        assert u.dims[0] == Affine.var("k") + 1  # k - 0 + 1

    def test_smoothing_rule_gets_lexicographic_order(self, heat):
        # Find the interior segment of U (t >= 1, 1 <= i < n-1) and the
        # smoothing rule's required sweep.
        smoothing = [
            (key, order)
            for (key, rid), order in heat.depgraph.rule_directions.items()
            if rid == 1 and order.signs != (0, 0)
        ]
        assert smoothing, "smoothing rule should have a directional sweep"
        for _, order in smoothing:
            assert order.signs[0] == 1  # ascending versions
            assert order.signs[1] == 0  # i stays parallel

    def test_priorities_split_boundary(self, heat):
        # The interior segment offers the smoothing rule; boundary
        # columns fall to the secondary carry rule.
        segments = heat.grid.segments["U"]
        interiors = [
            seg
            for seg in segments
            if any(opt.primary == 1 for opt in seg.options)
        ]
        boundaries = [
            seg
            for seg in segments
            if all(opt.primary == 2 for opt in seg.options)
        ]
        assert interiors and boundaries


class TestStaticAnalysis:
    EXAMPLE = str(
        pathlib.Path(__file__).resolve().parent.parent
        / "examples"
        / "heat_diffusion.py"
    )

    def test_example_passes_strict_check(self, capsys):
        from repro.analysis import run_check

        assert run_check([self.EXAMPLE], strict=True) == 0
        out = capsys.readouterr().out
        assert "0 error(s), 0 warning(s)" in out

    def test_example_is_fully_batch_stackable(self):
        """PB503: every configuration of the bundled example stacks."""
        from repro.analysis import check_file

        pb503 = [
            d for d in check_file(self.EXAMPLE) if d.code == "PB503"
        ]
        assert pb503, "each transform gets a stacking verdict"
        assert all(
            "batch-stackable under every configuration" in d.message
            for d in pb503
        )

    def test_versioned_stencil_blocks_fusion_with_witness(self, heat):
        """The wavefront reads U cells other instances wrote: PB602,
        backed by a replay-valid conflict witness."""
        from repro.analysis.depend import fusion_candidates, validate_conflict

        (cand,) = [
            c for c in fusion_candidates(heat) if c.matrix == "U"
        ]
        assert cand.status == "blocked"
        assert cand.conflict is not None
        assert validate_conflict(heat, cand.conflict)


class TestExecution:
    @pytest.mark.parametrize("steps", [1, 2, 5])
    def test_matches_reference(self, heat, steps):
        rng = np.random.default_rng(steps)
        data = rng.standard_normal(12)
        result = heat.run([data], sizes={"k": steps})
        np.testing.assert_allclose(
            result.output("B"), reference(data, steps), atol=1e-12
        )

    def test_zero_steps_copies_input(self, heat):
        data = np.array([3.0, 1.0, 4.0])
        result = heat.run([data], sizes={"k": 0})
        np.testing.assert_allclose(result.output("B"), data)

    def test_missing_size_rejected(self, heat):
        with pytest.raises(Exception, match="size"):
            heat.run([np.ones(4)])

    def test_smoothing_reduces_variation(self, heat):
        data = np.zeros(33)
        data[16] = 1.0
        result = heat.run([data], sizes={"k": 8})
        out = result.output("B")
        assert out.max() < 0.5
        assert out.sum() == pytest.approx(1.0, abs=1e-9)

    def test_versions_stored_and_ordered(self, heat):
        # Tasks for version t must depend (transitively) on version t-1:
        # verified behaviourally by correctness; here check the graph has
        # chained dependencies when blocks are small.
        config = ChoiceConfig()
        config.set_tunable("Heat.__seq_cutoff__", 1)
        config.set_tunable("Heat.__block_size__", 4)
        result = heat.run([np.ones(16)], config, sizes={"k": 4})
        assert any(t.deps for t in result.graph.tasks)
