"""End-to-end compiler tests on the paper's example programs.

RollingSum (paper Figure 3) and MatrixMultiply (Figure 1) exercise every
pass: applicable regions, choice grids, the choice dependency graph of
Figure 4, code generation, and execution under different configurations.
"""

import numpy as np
import pytest

from repro.compiler import ChoiceConfig, Selector, compile_program
from repro.compiler.config import site_key
from repro.language.errors import CompileError
from repro.symbolic import Affine, Box, Interval

# Note: the paper's Figure 3 writes A.region(0, i) for rule 0, but with
# half-open region semantics (required for MatrixMultiply's decompositions
# to tile without overlap) that would exclude A[i]; the shipped PetaBricks
# benchmark uses region(0, i+1), which we follow.
ROLLING_SUM = """
transform RollingSum
from A[n]
to B[n]
{
  to (B.cell(i) b) from (A.region(0, i+1) in) {
    b = sum(in);
  }
  to (B.cell(i) b) from (A.cell(i) a, B.cell(i-1) leftSum) {
    b = a + leftSum;
  }
}
"""

MATRIX_PROGRAM = """
transform MatrixAdd
from A[w, h], B[w, h]
to C[w, h]
{
  to (C.cell(x, y) c) from (A.cell(x, y) a, B.cell(x, y) b) {
    c = a + b;
  }
}

transform MatrixMultiply
from A[c, h], B[w, c]
to AB[w, h]
{
  to (AB.cell(x, y) out) from (A.row(y) a, B.column(x) b) {
    out = dot(a, b);
  }
  to (AB ab)
  from (A.region(0, 0, c/2, h) a1,
        A.region(c/2, 0, c, h) a2,
        B.region(0, 0, w, c/2) b1,
        B.region(0, c/2, w, c) b2) {
    ab = MatrixAdd(MatrixMultiply(a1, b1), MatrixMultiply(a2, b2));
  }
  to (AB.region(0, 0, w/2, h) ab1,
      AB.region(w/2, 0, w, h) ab2)
  from (A a, B.region(0, 0, w/2, c) b1, B.region(w/2, 0, w, c) b2) {
    ab1 = MatrixMultiply(a, b1);
    ab2 = MatrixMultiply(a, b2);
  }
  to (AB.region(0, 0, w, h/2) ab1,
      AB.region(0, h/2, w, h) ab2)
  from (A.region(0, 0, c, h/2) a1, A.region(0, h/2, c, h) a2, B b) {
    ab1 = MatrixMultiply(a1, b);
    ab2 = MatrixMultiply(a2, b);
  }
}
"""

n = Affine.var("n")


@pytest.fixture(scope="module")
def rolling():
    return compile_program(ROLLING_SUM).transform("RollingSum")


@pytest.fixture(scope="module")
def matmul_program():
    return compile_program(MATRIX_PROGRAM)


class TestRollingSumAnalysis:
    def test_applicable_regions_match_paper(self, rolling):
        # Paper: rule 0 applicable on [0, n), rule 1 on [1, n).
        rule0, rule1 = rolling.ir.rules
        assert rule0.applicable["B"] == Box([Interval(0, n)])
        assert rule1.applicable["B"] == Box([Interval(1, n)])

    def test_choice_grid_matches_paper(self, rolling):
        # Paper: B is divided into [0,1) -> {rule 0} and [1,n) -> {rule 0, rule 1}.
        segments = rolling.grid.segments["B"]
        assert len(segments) == 2
        first, second = segments
        assert first.box == Box([Interval(0, 1)])
        assert [opt.primary for opt in first.options] == [0]
        assert second.box == Box([Interval(1, n)])
        assert sorted(opt.primary for opt in second.options) == [0, 1]

    def test_dependency_graph_shape(self, rolling):
        # Figure 4: nodes A, B[0,1), B[1,n); self-edge on B[1,n) for rule 1
        # with offset -1.
        graph = rolling.depgraph
        assert set(graph.nodes) == {"A", "B.0", "B.1"}
        self_edges = [
            e for e in graph.edges if e.src == e.dst == "B.1" and e.rule_id == 1
        ]
        assert self_edges and self_edges[0].offsets == (-1,)
        assert graph.schedule_order.index("B.0") < graph.schedule_order.index("B.1")

    def test_rule1_forces_ascending_iteration(self, rolling):
        order = rolling.depgraph.rule_directions[("B.1", 1)]
        assert order.signs == (1,)
        assert not order.is_parallel

    def test_rule0_is_data_parallel(self, rolling):
        assert rolling.depgraph.rule_directions[("B.1", 0)].is_parallel


class TestRollingSumExecution:
    def expected(self, data):
        return np.cumsum(data)

    def test_default_config(self, rolling):
        data = np.arange(10, dtype=float)
        result = rolling.run([data])
        np.testing.assert_allclose(result.output("B"), self.expected(data))

    @pytest.mark.parametrize("option", [0, 1])
    def test_both_choices_agree(self, rolling, option):
        data = np.array([3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0])
        config = ChoiceConfig()
        config.set_choice(
            site_key("RollingSum", "B", 1), Selector.static(option)
        )
        result = rolling.run([data], config)
        np.testing.assert_allclose(result.output("B"), self.expected(data))

    def test_sequential_rule_has_chain_tasks(self, rolling):
        data = np.ones(64)
        config = ChoiceConfig()
        config.set_choice(site_key("RollingSum", "B", 1), Selector.static(1))
        config.set_tunable("RollingSum.__seq_cutoff__", 1)
        config.set_tunable("RollingSum.__block_size__", 8)
        graph = rolling.run([data], config).graph
        chained = [t for t in graph.tasks if t.deps]
        assert chained  # rule 1 produces dependent block tasks

    def test_parallel_rule_has_independent_blocks(self, rolling):
        data = np.ones(64)
        config = ChoiceConfig()
        config.set_choice(site_key("RollingSum", "B", 1), Selector.static(0))
        config.set_tunable("RollingSum.__seq_cutoff__", 1)
        config.set_tunable("RollingSum.__block_size__", 8)
        graph = rolling.run([data], config).graph
        blocks = [t for t in graph.tasks if t.label.startswith("rule0")]
        assert len(blocks) >= 8
        assert all(not t.deps for t in blocks)

    def test_work_accounting_quadratic_vs_linear(self, rolling):
        # Rule 0 is Theta(n^2) operations, rule 1 is Theta(n).
        data = np.ones(128)
        works = {}
        for option in (0, 1):
            config = ChoiceConfig()
            config.set_choice(
                site_key("RollingSum", "B", 1), Selector.static(option)
            )
            works[option] = rolling.run([data], config).graph.total_work()
        assert works[0] > 10 * works[1]

    def test_empty_input(self, rolling):
        result = rolling.run([np.array([], dtype=float)])
        assert result.output("B").shape == (0,)

    def test_single_element(self, rolling):
        result = rolling.run([np.array([7.0])])
        np.testing.assert_allclose(result.output("B"), [7.0])

    def test_wrong_input_count(self, rolling):
        with pytest.raises(Exception):
            rolling.run([np.ones(4), np.ones(4)])


class TestMatrixMultiply:
    def reference(self, a, b):
        # Paper convention: A[c,h] holds A.cell(x=col over c, y=row over h);
        # viewing our array axis0 as x and axis1 as y, AB[x,y] =
        # sum_k A[k,y] * B[x,k].
        return np.einsum("ky,xk->xy", a, b)

    def test_base_case(self, matmul_program):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((3, 4))  # c=3, h=4
        b = rng.standard_normal((5, 3))  # w=5, c=3
        mm = matmul_program.transform("MatrixMultiply")
        result = mm.run([a, b])
        np.testing.assert_allclose(
            result.output("AB"), self.reference(a, b), atol=1e-12
        )

    @pytest.mark.parametrize("option", [1, 2, 3])
    def test_recursive_decompositions_agree(self, matmul_program, option):
        rng = np.random.default_rng(option)
        a = rng.standard_normal((4, 4))
        b = rng.standard_normal((4, 4))
        mm = matmul_program.transform("MatrixMultiply")
        config = ChoiceConfig()
        # Problem size (all matrices) is 48 at 4x4; recurse twice, then
        # switch to the base rule once the footprint drops below 25.
        config.set_choice(
            site_key("MatrixMultiply", "AB", 0),
            Selector(((25, 0), (None, option))),
        )
        result = mm.run([a, b], config)
        np.testing.assert_allclose(
            result.output("AB"), self.reference(a, b), atol=1e-12
        )

    def test_single_choice_site(self, matmul_program):
        mm = matmul_program.transform("MatrixMultiply")
        sites = mm.choice_sites()
        assert len(sites) == 1
        assert len(sites[0][1].options) == 4

    def test_recursion_detected(self, matmul_program):
        mm = matmul_program.transform("MatrixMultiply")
        flags = [rule.is_recursive for rule in mm.ir.rules]
        assert flags == [False, True, True, True]

    def test_always_recursive_config_raises(self, matmul_program):
        mm = matmul_program.transform("MatrixMultiply")
        config = ChoiceConfig()
        config.set_choice(
            site_key("MatrixMultiply", "AB", 0), Selector.static(1)
        )
        with pytest.raises(Exception, match="recursion"):
            mm.run([np.ones((4, 4)), np.ones((4, 4))], config)

    def test_nonsquare_shapes(self, matmul_program):
        rng = np.random.default_rng(7)
        a = rng.standard_normal((6, 2))  # c=6, h=2
        b = rng.standard_normal((8, 6))  # w=8, c=6
        mm = matmul_program.transform("MatrixMultiply")
        config = ChoiceConfig()
        # Footprint is 76 here; splitting h (option 3) halves it to 62.
        config.set_choice(
            site_key("MatrixMultiply", "AB", 0),
            Selector(((63, 0), (None, 3))),
        )
        result = mm.run([a, b], config)
        np.testing.assert_allclose(
            result.output("AB"), self.reference(a, b), atol=1e-12
        )

    def test_mismatched_shared_dimension(self, matmul_program):
        mm = matmul_program.transform("MatrixMultiply")
        with pytest.raises(Exception, match="inconsistent|satisfy"):
            mm.run([np.ones((3, 4)), np.ones((5, 2))])


class TestCompileErrors:
    def test_unknown_matrix_in_rule(self):
        with pytest.raises(CompileError):
            compile_program(
                "transform T from A[n] to B[n]"
                "{ to (B.cell(i) b) from (Z.cell(i) z) { b = z; } }"
            )

    def test_uncovered_region(self):
        # Only rule writes [1, n); cell 0 has no rule.
        with pytest.raises(CompileError, match="no rule covers"):
            compile_program(
                "transform T from A[n] to B[n]"
                "{ to (B.cell(i) b) from (A.cell(i-1) a) { b = a; } }"
            )

    def test_deadlock_cycle_detected(self):
        # Each cell depends on the next and the previous: no direction.
        with pytest.raises(CompileError):
            compile_program(
                "transform T from A[n] to B[n]"
                "{ to (B.cell(i) b) from (B.cell(i-1) l, B.cell(i+1) r) "
                "{ b = l + r; } }"
            )

    def test_write_to_input_rejected(self):
        with pytest.raises(CompileError, match="input"):
            compile_program(
                "transform T from A[n] to B[n]"
                "{ to (A.cell(i) a) from (B.cell(i) b) { a = b; } }"
            )

    def test_priorities_handle_corner_case(self):
        # Primary rule needs i-1; secondary covers the corner at i=0.
        program = compile_program(
            """
            transform Shift from A[n] to B[n]
            {
              to (B.cell(i) b) from (A.cell(i-1) a) { b = a; }
              secondary to (B.cell(i) b) from () { b = -1; }
            }
            """
        )
        t = program.transform("Shift")
        segments = t.grid.segments["B"]
        assert len(segments) == 2
        assert [opt.primary for opt in segments[0].options] == [1]
        assert [opt.primary for opt in segments[1].options] == [0]
        result = t.run([np.array([5.0, 6.0, 7.0])])
        np.testing.assert_allclose(result.output("B"), [-1.0, 5.0, 6.0])
