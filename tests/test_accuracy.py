"""Tests for the §4 variable-accuracy tuner support (autotuner/accuracy).

Three layers: hypothesis properties for the Pareto-front and per-bin
selection helpers (dominance, idempotence, monotonicity), seeded
determinism of the full ``apps/poisson`` accuracy tuner, and a small
end-to-end accuracy-vs-time front over real Poisson configurations
(the Figure 9a shape: more accuracy costs more time).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autotuner.accuracy import (
    PAPER_ACCURACY_BINS,
    Scored,
    accuracy_ratio,
    fastest_per_bin,
    pareto_front,
    rms,
)
from repro.runtime import MACHINES, WorkStealingScheduler


# ---------------------------------------------------------------------------
# scalar helpers
# ---------------------------------------------------------------------------


def test_accuracy_ratio_definition():
    assert accuracy_ratio(10.0, 2.0) == 5.0
    assert accuracy_ratio(10.0, 0.0) == float("inf")
    assert accuracy_ratio(0.0, 2.0) == 0.0


def test_rms():
    assert rms(np.array([])) == 0.0
    assert rms(np.array([3.0, 4.0])) == pytest.approx(np.sqrt(12.5))
    assert rms(np.array([-2.0])) == 2.0


# ---------------------------------------------------------------------------
# pareto_front: hypothesis dominance properties
# ---------------------------------------------------------------------------

scored_lists = st.lists(
    st.builds(
        Scored,
        candidate=st.integers(0, 10**6),
        time=st.floats(0.0, 1e6, allow_nan=False),
        accuracy=st.floats(0.0, 1e9, allow_nan=False),
    ),
    min_size=0,
    max_size=40,
)


def _dominates(a: Scored, b: Scored) -> bool:
    """a strictly dominates b: no worse on both axes, better on one."""
    return (
        a.time <= b.time
        and a.accuracy >= b.accuracy
        and (a.time < b.time or a.accuracy > b.accuracy)
    )


@settings(max_examples=200, deadline=None)
@given(scored=scored_lists)
def test_front_members_are_nondominated(scored):
    front = pareto_front(scored)
    for member in front:
        for other in scored:
            assert not _dominates(other, member), (
                f"{other} dominates front member {member}"
            )


@settings(max_examples=200, deadline=None)
@given(scored=scored_lists)
def test_every_candidate_is_covered_by_the_front(scored):
    """Every input is weakly dominated by some front member (so the
    front is a complete summary, not just a nondominated subset)."""
    front = pareto_front(scored)
    assert bool(front) == bool(scored)
    for entry in scored:
        assert any(
            member.time <= entry.time and member.accuracy >= entry.accuracy
            for member in front
        )


@settings(max_examples=200, deadline=None)
@given(scored=scored_lists)
def test_front_is_sorted_and_strictly_improving(scored):
    """Figure 9a shape: along the front, time and accuracy both rise."""
    front = pareto_front(scored)
    for earlier, later in zip(front, front[1:]):
        assert earlier.time <= later.time
        assert earlier.accuracy < later.accuracy


@settings(max_examples=100, deadline=None)
@given(scored=scored_lists)
def test_front_is_idempotent(scored):
    front = pareto_front(scored)
    assert pareto_front(front) == front


# ---------------------------------------------------------------------------
# fastest_per_bin
# ---------------------------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(scored=scored_lists)
def test_fastest_per_bin_selection(scored):
    table = fastest_per_bin(scored)
    assert tuple(table) == PAPER_ACCURACY_BINS
    for level, chosen in table.items():
        achieving = [s for s in scored if s.accuracy >= level]
        if not achieving:
            assert chosen is None
        else:
            assert chosen.accuracy >= level
            assert chosen.time == min(s.time for s in achieving)


@settings(max_examples=100, deadline=None)
@given(scored=scored_lists)
def test_fastest_per_bin_times_rise_with_accuracy(scored):
    """Demanding more accuracy can never get cheaper: the chosen time is
    non-decreasing across ascending bins (achieving sets only shrink)."""
    table = fastest_per_bin(scored)
    previous = None
    for level in PAPER_ACCURACY_BINS:
        chosen = table[level]
        if chosen is None:
            # once a level is unreachable, all higher levels are too
            for higher in PAPER_ACCURACY_BINS:
                if higher >= level:
                    assert table[higher] is None
            break
        if previous is not None:
            assert chosen.time >= previous.time
        previous = chosen


def test_fastest_per_bin_custom_bins():
    scored = [
        Scored("cheap", time=1.0, accuracy=50.0),
        Scored("mid", time=5.0, accuracy=500.0),
        Scored("exact", time=50.0, accuracy=float("inf")),
    ]
    table = fastest_per_bin(scored, bins=(10.0, 100.0, 1e6))
    assert table[10.0].candidate == "cheap"
    assert table[100.0].candidate == "mid"
    assert table[1e6].candidate == "exact"


# ---------------------------------------------------------------------------
# apps/poisson: determinism under seed, and a real accuracy-vs-time front
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def poisson_program():
    from repro.apps.poisson import build_program

    return build_program()


def test_tune_accuracy_is_deterministic_under_seed(poisson_program):
    """Two runs with the same seed produce byte-identical configurations
    and identical candidate histories (the representative-training-data
    assumption makes the whole §4.1.4 procedure a pure function of the
    seed)."""
    from repro.apps.poisson import tune_accuracy

    machine = MACHINES["xeon8"]
    first_config, first_history = tune_accuracy(
        poisson_program, machine, max_level=2, seed=20090615
    )
    second_config, second_history = tune_accuracy(
        poisson_program, machine, max_level=2, seed=20090615
    )
    assert first_config.to_json() == second_config.to_json()
    assert first_history == second_history
    # every (grid, bin) pair tuned, and every winner hit its target bin
    from repro.apps.poisson import ACCURACY_BINS

    assert len(first_history) == len(ACCURACY_BINS)
    for _, bin_index, _, elapsed, accuracy in first_history:
        assert elapsed > 0
        assert accuracy >= ACCURACY_BINS[bin_index] * 0.99


def test_poisson_accuracy_time_front(poisson_program):
    """A small end-to-end Figure 9a: score real Poisson configurations
    (direct, SOR at several trained sweep counts) on a 9x9 training
    problem; the resulting front trades time for accuracy, and the
    per-bin table picks the cheap configs at low bins, the exact solve
    at the top."""
    import random

    from repro.apps.poisson import (
        input_generator,
        measure_accuracy,
        poisson_site,
    )
    from repro.compiler import ChoiceConfig, Selector

    solver = poisson_program.transform("Poisson_0")
    machine = MACHINES["xeon8"]
    scheduler = WorkStealingScheduler(machine)
    x0, b = input_generator(9, random.Random(7))

    def score(label, option, sweeps=None):
        config = ChoiceConfig()
        config.set_choice(poisson_site(0), Selector.static(option))
        if sweeps is not None:
            config.set_tunable("Poisson_0.sorIters", sweeps)
        result = solver.run([x0, b], config)
        accuracy = measure_accuracy(x0, result.output("Y"), b)
        elapsed = scheduler.run(result.graph).makespan
        return Scored(label, time=elapsed, accuracy=accuracy)

    scored = [score("direct", 0)]
    for sweeps in (1, 5, 25, 125):
        scored.append(score(f"sor{sweeps}", 1, sweeps))

    by_label = {s.candidate: s for s in scored}
    # direct is exact (infinite accuracy) and costs more than a cheap
    # iterative answer (at 9x9 it can still beat *many* SOR sweeps)
    assert by_label["direct"].accuracy == float("inf")
    assert by_label["direct"].time > by_label["sor1"].time
    # more SOR sweeps: strictly more time, strictly more accuracy
    assert (
        by_label["sor1"].time
        < by_label["sor5"].time
        < by_label["sor25"].time
        < by_label["sor125"].time
    )
    assert (
        by_label["sor1"].accuracy
        < by_label["sor5"].accuracy
        < by_label["sor25"].accuracy
        < by_label["sor125"].accuracy
    )

    front = pareto_front(scored)
    assert front[-1].candidate == "direct"
    assert len(front) >= 3  # a real trade-off curve, not one point
    # the per-bin table serves cheap requests cheaply and exact requests
    # exactly: times never decrease as the accuracy demand rises
    table = fastest_per_bin(scored)
    chosen = [table[level] for level in PAPER_ACCURACY_BINS]
    assert all(entry is not None for entry in chosen)
    for earlier, later in zip(chosen, chosen[1:]):
        assert later.time >= earlier.time
    assert chosen[-1].candidate == "direct"
