"""Unit and property tests for repro.symbolic.expr."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.symbolic import Affine, Assumptions, SymbolicCompareError, parse_affine
from repro.symbolic.expr import sort_bounds

n = Affine.var("n")
i = Affine.var("i")


class TestConstruction:
    def test_constant(self):
        expr = Affine.const(5)
        assert expr.is_constant()
        assert expr.as_constant() == 5

    def test_variable(self):
        expr = Affine.var("n")
        assert not expr.is_constant()
        assert expr.coefficient("n") == 1
        assert expr.variables() == ("n",)

    def test_zero_coefficients_dropped(self):
        expr = Affine(3, {"n": 0})
        assert expr.is_constant()

    def test_coerce_string(self):
        assert Affine.coerce("n+1") == n + 1

    def test_coerce_fraction(self):
        assert Affine.coerce(Fraction(1, 2)).as_constant() == Fraction(1, 2)

    def test_coerce_rejects_float(self):
        with pytest.raises(TypeError):
            Affine.coerce(1.5)


class TestArithmetic:
    def test_add(self):
        assert (n + 1) + (n + 2) == Affine(3, {"n": 2})

    def test_sub_cancels(self):
        assert (n + 1) - (n + 1) == Affine(0)

    def test_scalar_mul(self):
        assert n * 3 == Affine(0, {"n": 3})
        assert 3 * n == Affine(0, {"n": 3})

    def test_nonaffine_product_rejected(self):
        with pytest.raises(ValueError):
            _ = n * n

    def test_division_exact(self):
        half = n / 2
        assert half.coefficient("n") == Fraction(1, 2)

    def test_division_by_symbol_rejected(self):
        with pytest.raises(ValueError):
            _ = Affine.const(1) / n

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            _ = n / 0

    def test_neg(self):
        assert -(n - 1) == Affine(1, {"n": -1})


class TestEvaluation:
    def test_evaluate_exact(self):
        assert (n / 2 + 1).evaluate({"n": 5}) == Fraction(7, 2)

    def test_eval_floor_matches_c_division(self):
        for size in range(1, 20):
            assert (n / 2).eval_floor({"n": size}) == size // 2

    def test_missing_variable_raises(self):
        with pytest.raises(KeyError):
            (n + i).evaluate({"n": 3})

    def test_subs_expression(self):
        expr = (n + 1).subs({"n": i * 2})
        assert expr == Affine(1, {"i": 2})

    def test_subs_partial(self):
        expr = (n + i).subs({"n": 4})
        assert expr == Affine(4, {"i": 1})


class TestComparison:
    def test_constant_compare(self):
        assert Affine.const(1).compare(Affine.const(2)) == -1
        assert Affine.const(2).compare(Affine.const(2)) == 0

    def test_nonneg_default_assumption(self):
        # all variables >= 0 by default, so n + 1 > 0 always.
        assert (n + 1).compare(Affine.const(0)) == 1

    def test_needs_assumption(self):
        asm = Assumptions({"n": (1, None)})
        assert Affine.const(1).always_le(n, asm)
        assert not Affine.const(1).always_le(n)  # n could be 0

    def test_undecidable_returns_none(self):
        assert n.compare(i) is None

    def test_always_lt_strict(self):
        asm = Assumptions({"n": (2, None)})
        assert Affine.const(1).always_lt(n, asm)
        assert not Affine.const(2).always_lt(n, asm)

    def test_bounds_with_ranges(self):
        asm = Assumptions({"n": (1, 10)})
        lo, hi = (2 * n + 1).bounds(asm)
        assert lo == 3 and hi == 21

    def test_bounds_negative_coefficient(self):
        asm = Assumptions({"n": (1, 10)})
        lo, hi = (-n).bounds(asm)
        assert lo == -10 and hi == -1

    def test_bounds_unbounded(self):
        lo, hi = n.bounds()
        assert lo == 0 and hi is None


class TestSortBounds:
    def test_orders_constants_and_symbols(self):
        asm = Assumptions({"n": (1, None)})
        ordered = sort_bounds([n, Affine.const(0), Affine.const(1)], asm)
        assert ordered == (Affine.const(0), Affine.const(1), n)

    def test_collapses_duplicates(self):
        ordered = sort_bounds([n + 1, Affine(1, {"n": 1})])
        assert len(ordered) == 1

    def test_undecidable_raises(self):
        with pytest.raises(SymbolicCompareError):
            sort_bounds([n, i])

    def test_equal_constant_and_symbolic_zero(self):
        ordered = sort_bounds([Affine.const(0), n - n])
        assert len(ordered) == 1


class TestParser:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("0", Affine.const(0)),
            ("n", n),
            ("n+1", n + 1),
            ("n - 1", n - 1),
            ("2*n", n * 2),
            ("n/2", n / 2),
            ("(n+1)/2", (n + 1) / 2),
            ("-n", -n),
            ("n/2 + 1", n / 2 + 1),
            ("3*(n - 2)", (n - 2) * 3),
        ],
    )
    def test_roundtrip(self, text, expected):
        assert parse_affine(text) == expected

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_affine("n + @")

    def test_rejects_unbalanced(self):
        with pytest.raises(ValueError):
            parse_affine("(n + 1")

    def test_rejects_product_of_variables(self):
        with pytest.raises(ValueError):
            parse_affine("n*i")

    def test_str_parse_roundtrip(self):
        expr = (n * 2 - i) / 3 + 1
        assert parse_affine(str(expr)) == expr


@st.composite
def affine_exprs(draw):
    const = draw(st.integers(-20, 20))
    coeffs = {}
    for name in draw(st.sets(st.sampled_from(["n", "i", "j"]), max_size=3)):
        coeffs[name] = draw(st.integers(-5, 5))
    return Affine(const, coeffs)


ENVS = st.fixed_dictionaries(
    {"n": st.integers(0, 50), "i": st.integers(0, 50), "j": st.integers(0, 50)}
)


class TestProperties:
    @given(affine_exprs(), affine_exprs(), ENVS)
    def test_addition_homomorphic(self, a, b, env):
        assert (a + b).evaluate(env) == a.evaluate(env) + b.evaluate(env)

    @given(affine_exprs(), st.integers(-5, 5), ENVS)
    def test_scaling_homomorphic(self, a, k, env):
        assert (a * k).evaluate(env) == a.evaluate(env) * k

    @given(affine_exprs(), ENVS)
    def test_bounds_contain_value(self, a, env):
        asm = Assumptions({v: (0, 50) for v in ("n", "i", "j")})
        lo, hi = a.bounds(asm)
        value = a.evaluate(env)
        assert lo is not None and hi is not None
        assert lo <= value <= hi

    @given(affine_exprs(), affine_exprs(), ENVS)
    def test_compare_sound(self, a, b, env):
        asm = Assumptions({v: (0, 50) for v in ("n", "i", "j")})
        cmp = a.compare(b, asm)
        if cmp == -1:
            assert a.evaluate(env) < b.evaluate(env)
        elif cmp == 1:
            assert a.evaluate(env) > b.evaluate(env)
        elif cmp == 0:
            assert a.evaluate(env) == b.evaluate(env)

    @given(affine_exprs())
    def test_str_parse_roundtrip(self, a):
        assert parse_affine(str(a)) == a

    @given(affine_exprs(), affine_exprs())
    def test_hash_consistent_with_eq(self, a, b):
        if a == b:
            assert hash(a) == hash(b)
