"""Tests for the command-line interface (the Figure 2 workflow)."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.compiler import ChoiceConfig, Selector
from repro.observe import load_jsonl

ROLLING = """
transform RollingSum
from A[n]
to B[n]
{
  to (B.cell(i) b) from (A.region(0, i+1) in) { b = sum(in); }
  to (B.cell(i) b) from (A.cell(i) a, B.cell(i-1) s) { b = a + s; }
}
"""


@pytest.fixture()
def source(tmp_path):
    path = tmp_path / "rolling.pbcc"
    path.write_text(ROLLING)
    return str(path)


class TestCompile:
    def test_shows_sites_and_choices(self, source, capsys):
        assert main(["compile", source]) == 0
        out = capsys.readouterr().out
        assert "transform RollingSum" in out
        assert "RollingSum.B.1" in out
        assert "rule0" in out and "rule1" in out


class TestRun:
    def test_run_with_input_file(self, source, tmp_path, capsys):
        data = tmp_path / "in.npy"
        np.save(data, np.arange(5.0))
        assert main(["run", source, "-t", "RollingSum", "--input", str(data)]) == 0
        out = capsys.readouterr().out
        assert "B (shape (5,))" in out
        assert "10." in out  # cumulative sum tail

    def test_run_with_text_input(self, source, tmp_path, capsys):
        data = tmp_path / "in.txt"
        data.write_text("1.0 2.0 3.0")
        assert main(["run", source, "-t", "RollingSum", "--input", str(data)]) == 0
        assert "6." in capsys.readouterr().out

    def test_run_random_input(self, source, capsys):
        assert main(["run", source, "-t", "RollingSum", "--random-input", "8"]) == 0
        assert "8 rule applications" in capsys.readouterr().out or "tasks" in ""

    def test_run_saves_output(self, source, tmp_path, capsys):
        data = tmp_path / "in.npy"
        np.save(data, np.ones(4))
        out_path = tmp_path / "out.npy"
        assert main([
            "run", source, "-t", "RollingSum",
            "--input", str(data), "--output", str(out_path),
        ]) == 0
        np.testing.assert_allclose(np.load(out_path), [1, 2, 3, 4])

    def test_run_with_config(self, source, tmp_path, capsys):
        config = ChoiceConfig()
        config.set_choice("RollingSum.B.1", Selector.static(1))
        cfg_path = tmp_path / "cfg.json"
        config.save(str(cfg_path))
        data = tmp_path / "in.npy"
        np.save(data, np.ones(4))
        assert main([
            "run", source, "-t", "RollingSum",
            "--input", str(data), "--config", str(cfg_path),
        ]) == 0

    def test_run_missing_inputs_errors(self, source, capsys):
        assert main(["run", source, "-t", "RollingSum"]) == 2


class TestTrace:
    def test_trace_writes_jsonl(self, source, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        assert main([
            "trace", source, "-t", "RollingSum",
            "--random-input", "32", "-o", str(out),
        ]) == 0
        events = load_jsonl(str(out))
        kinds = {e["kind"] for e in events}
        assert {"run_begin", "task_start", "task_finish", "run_end"} <= kinds
        starts = [e for e in events if e["kind"] == "task_start"]
        finishes = [e for e in events if e["kind"] == "task_finish"]
        assert len(starts) == len(finishes) > 0
        stdout = capsys.readouterr().out
        assert "events written to" in stdout
        assert "scheduler.tasks_started" in stdout

    def test_trace_streams_jsonl_without_output(self, source, capsys):
        assert main([
            "trace", source, "-t", "RollingSum", "--random-input", "16",
        ]) == 0
        stdout = capsys.readouterr().out
        lines = [line for line in stdout.splitlines() if line.strip()]
        assert all(json.loads(line)["kind"] for line in lines)

    def test_trace_deterministic_for_seed(self, source, tmp_path, capsys):
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            assert main([
                "trace", source, "-t", "RollingSum",
                "--random-input", "32", "--seed", "7", "-o", str(path),
            ]) == 0
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_trace_workers_one_no_steals(self, source, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        assert main([
            "trace", source, "-t", "RollingSum", "--random-input", "32",
            "--workers", "1", "-o", str(out),
        ]) == 0
        assert not [
            e for e in load_jsonl(str(out)) if e["kind"] == "steal"
        ]

    def test_trace_missing_inputs_errors(self, source, capsys):
        assert main(["trace", source, "-t", "RollingSum"]) == 2


class TestTuneAndReport:
    def test_tune_writes_config(self, source, tmp_path, capsys):
        cfg = tmp_path / "tuned.json"
        assert main([
            "tune", source, "-t", "RollingSum",
            "--machine", "xeon1", "--min-size", "16", "--max-size", "64",
            "-o", str(cfg),
        ]) == 0
        out = capsys.readouterr().out
        assert "best simulated time" in out
        assert cfg.exists()
        restored = ChoiceConfig.load(str(cfg))
        assert restored.choice_for("RollingSum.B.1") is not None

    def test_tune_candidate_timeline(self, source, tmp_path, capsys):
        trace = tmp_path / "tune.jsonl"
        assert main([
            "tune", source, "-t", "RollingSum",
            "--machine", "xeon1", "--min-size", "16", "--max-size", "32",
            "--trace", str(trace),
        ]) == 0
        assert "candidate timeline" in capsys.readouterr().out
        events = load_jsonl(str(trace))
        candidates = [e for e in events if e["kind"] == "candidate"]
        generations = [e for e in events if e["kind"] == "generation"]
        assert candidates and generations
        for event in candidates:
            assert {"size", "time", "config", "tasks", "steals"} <= set(event)
        assert [g["size"] for g in generations] == [16, 32]

    def test_tune_jobs_byte_identical(self, source, tmp_path, capsys):
        """--jobs 2 fans evaluation over a process pool yet writes the
        exact bytes --jobs 1 writes."""
        configs = {}
        for jobs in (1, 2):
            cfg = tmp_path / f"tuned-j{jobs}.json"
            assert main([
                "tune", source, "-t", "RollingSum",
                "--machine", "xeon8", "--min-size", "16", "--max-size", "32",
                "--jobs", str(jobs), "-o", str(cfg),
            ]) == 0
            configs[jobs] = cfg.read_bytes()
        assert configs[1] == configs[2]

    def test_tune_cache_warm_rerun(self, source, tmp_path, capsys):
        cache = tmp_path / "cache.jsonl"
        cfg = tmp_path / "tuned.json"
        argv = [
            "tune", source, "-t", "RollingSum",
            "--machine", "xeon1", "--min-size", "16", "--max-size", "32",
            "--cache", str(cache), "-o", str(cfg),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "measurement cache" in cold
        assert cache.exists()
        first = cfg.read_bytes()

        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "(0 fresh evaluations this run)" in warm
        assert cfg.read_bytes() == first

    def test_tune_injected_faults_byte_identical(self, source, tmp_path, capsys):
        """The acceptance bar: tuning with --jobs 2 under injected
        crashes and hangs writes the exact bytes of a clean --jobs 1
        run, and reports what it recovered from."""
        base = [
            "tune", source, "-t", "RollingSum",
            "--machine", "xeon8", "--min-size", "16", "--max-size", "32",
        ]
        clean = tmp_path / "clean.json"
        assert main(base + ["--jobs", "1", "-o", str(clean)]) == 0
        capsys.readouterr()

        faulty = tmp_path / "faulty.json"
        assert main(base + [
            "--jobs", "2",
            "--inject", "worker-crash:0.2,worker-hang:0.05,hang=2",
            "--measure-timeout", "1", "--max-retries", "3",
            "-o", str(faulty),
        ]) == 0
        out = capsys.readouterr().out
        assert faulty.read_bytes() == clean.read_bytes()
        assert "fault recovery:" in out
        assert "retries" in out

    def test_tune_clean_run_reports_no_recovery(self, source, tmp_path, capsys):
        assert main([
            "tune", source, "-t", "RollingSum",
            "--machine", "xeon1", "--min-size", "16", "--max-size", "16",
        ]) == 0
        assert "fault recovery:" not in capsys.readouterr().out

    def test_tune_corrupt_cache_surfaced(self, source, tmp_path, capsys):
        cache = tmp_path / "cache.jsonl"
        cache.write_text('{truncated row\n["not", "a", "record"]\n')
        assert main([
            "tune", source, "-t", "RollingSum",
            "--machine", "xeon1", "--min-size", "16", "--max-size", "16",
            "--cache", str(cache),
        ]) == 0
        out = capsys.readouterr().out
        assert "2 corrupt cache lines skipped" in out
        assert (tmp_path / "cache.jsonl.bad").exists()

    def test_tune_bad_inject_spec_errors(self, source, capsys):
        assert main([
            "tune", source, "-t", "RollingSum", "--inject", "nonsense:0.5",
        ]) == 2
        assert "--inject" in capsys.readouterr().err

    def test_report(self, tmp_path, capsys):
        config = ChoiceConfig()
        config.set_choice("T.Y.0", Selector(((64, 0), (None, 1))))
        config.set_tunable("T.k", 9)
        path = tmp_path / "cfg.json"
        config.save(str(path))
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "T.Y.0" in out and "T.k = 9" in out
