"""Tests for the autotuner: n-ary search, candidates, the genetic tuner,
consistency checking, and accuracy utilities.

The genetic-tuner tests use a toy recursive TreeSum transform built with
the Python builder API (also exercising builder + native bodies end to
end): a sequential direct rule versus a parallel recursive split.  The
tuner must discover the paper's signature result — a hybrid composition
with an architecture-dependent cutoff — from scratch.
"""

import numpy as np
import pytest

from repro.autotuner import (
    Candidate,
    ConsistencyError,
    Evaluator,
    GeneticTuner,
    add_level,
    check_consistency,
    fastest_per_bin,
    nary_search,
    pareto_front,
    seed_population,
)
from repro.autotuner.accuracy import Scored, accuracy_ratio
from repro.autotuner.candidates import dedupe, set_tunable
from repro.compiler import ChoiceConfig, Selector, TransformBuilder, compile_program
from repro.compiler.config import site_key
from repro.runtime import MACHINES


def build_treesum():
    """TreeSum: S = sum(A).  Rule 0 is a sequential direct sum (work n);
    rule 1 splits in half and recurses in parallel (work ~1 per level)."""
    b = TransformBuilder("TreeSum")
    b.input("A", "n")
    b.output("S")

    def direct(ctx):
        view = ctx["a"]
        ctx["s"].set(float(np.sum(view.to_numpy())))
        ctx.charge(max(1, view.shape[0]))

    def split(ctx):
        view = ctx["a"]
        half = view.shape[0] // 2
        n = view.shape[0]
        left, right = ctx.parallel(
            lambda: ctx.call("TreeSum", view.region(0, half)),
            lambda: ctx.call("TreeSum", view.region(half, n)),
        )
        ctx["s"].set(left.value + right.value)
        ctx.charge(2)

    b.rule(to=[("S", "all", "s")], from_=[("A", "all", "a")], body=direct,
           label="direct")
    b.rule(to=[("S", "all", "s")], from_=[("A", "all", "a")], body=split,
           label="split", recursive=True)
    return compile_program([b.build()])


def treesum_inputs(size, rng):
    return [np.array([rng.uniform(-1, 1) for _ in range(size)])]


SITE = site_key("TreeSum", "S", 0)


@pytest.fixture(scope="module")
def treesum():
    return build_treesum()


class TestNarySearch:
    def test_convex(self):
        best, cost = nary_search(lambda v: (v - 37) ** 2, 1, 1000)
        assert best == 37 and cost == 0

    def test_arity_one_degrades_to_endpoints(self):
        # Regression: arity == 1 with hi > lo used to divide by zero.
        from repro.autotuner.nary import _probe_points

        assert _probe_points(2, 100, 1) == [2, 100]
        best, cost = nary_search(lambda v: (v - 90) ** 2, 2, 100, arity=1)
        assert (best, cost) == (100, 100)

    def test_zero_based_range(self):
        # Regression: binary knobs like __fuse__ span [0, 1]; zero used
        # to be rejected outright (it breaks geometric spacing).
        from repro.autotuner.nary import _probe_points

        assert _probe_points(0, 1, 4) == [0, 1]
        assert _probe_points(0, 100, 4)[0] == 0
        assert nary_search(lambda v: (v - 0) ** 2, 0, 1)[0] == 0
        assert nary_search(lambda v: (v - 1) ** 2, 0, 1)[0] == 1
        assert nary_search(lambda v: (v - 37) ** 2, 0, 1000)[0] == 37

    def test_probe_points_equal_bounds(self):
        from repro.autotuner.nary import _probe_points

        assert _probe_points(7, 7, 4) == [7]
        assert _probe_points(7, 7, 1) == [7]

    def test_probe_points_inverted_bounds(self):
        from repro.autotuner.nary import _probe_points

        assert _probe_points(9, 3, 4) == [9]

    def test_probe_points_tiny_range(self):
        from repro.autotuner.nary import _probe_points

        assert _probe_points(1, 2, 4) == [1, 2]
        assert _probe_points(3, 4, 2) == [3, 4]

    def test_probe_points_rejects_negative(self):
        from repro.autotuner.nary import _probe_points

        with pytest.raises(ValueError):
            _probe_points(-1, 10, 4)

    def test_batch_objective_matches_serial(self):
        def objective(v):
            return (v - 37) ** 2

        batches = []

        def batch_objective(values):
            batches.append(list(values))
            return [objective(v) for v in values]

        serial = nary_search(objective, 1, 1000, arity=4, rounds=4)
        batched = nary_search(
            objective, 1, 1000, arity=4, rounds=4,
            batch_objective=batch_objective,
        )
        assert serial == batched
        assert batches  # the hook actually ran
        # every batch holds distinct, not-yet-memoized values
        seen = set()
        for batch in batches:
            assert not (set(batch) & seen)
            seen.update(batch)

    def test_batch_objective_size_mismatch_rejected(self):
        with pytest.raises(ValueError, match="batch objective"):
            nary_search(
                lambda v: v, 1, 100,
                batch_objective=lambda values: [0.0],
            )

    def test_boundary_minimum(self):
        best, _ = nary_search(lambda v: v, 1, 100)
        assert best == 1

    def test_decreasing(self):
        best, _ = nary_search(lambda v: -v, 1, 100)
        assert best == 100

    def test_single_point(self):
        assert nary_search(lambda v: v, 5, 5) == (5, 5)

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            nary_search(lambda v: v, 10, 5)

    def test_memoizes(self):
        calls = []

        def objective(v):
            calls.append(v)
            return abs(v - 50)

        nary_search(objective, 1, 128, arity=4, rounds=4)
        assert len(calls) == len(set(calls))


class TestCandidates:
    def test_seeds_cover_all_options(self, treesum):
        seeds = seed_population([treesum.transform("TreeSum")])
        assert len(seeds) == 2
        picks = [c.config.choice_for(SITE).pick(10) for c in seeds]
        assert picks == [0, 1]

    def test_add_level(self):
        base = Candidate(config=ChoiceConfig())
        base.config.set_choice(SITE, Selector.static(0))
        mutated = add_level(base, SITE, 1, 64)
        selector = mutated.config.choice_for(SITE)
        assert selector.pick(10) == 0
        assert selector.pick(100) == 1

    def test_add_level_noop_when_same_option(self):
        base = Candidate(config=ChoiceConfig())
        base.config.set_choice(SITE, Selector.static(1))
        assert add_level(base, SITE, 1, 64) is None

    def test_add_level_rejects_nonmonotone_threshold(self):
        base = Candidate(config=ChoiceConfig())
        base.config.set_choice(SITE, Selector(((64, 0), (None, 1))))
        assert add_level(base, SITE, 0, 32) is None

    def test_add_level_stacks(self):
        base = Candidate(config=ChoiceConfig())
        base.config.set_choice(SITE, Selector.static(0))
        first = add_level(base, SITE, 1, 32)
        second = add_level(first, SITE, 0, 128)
        selector = second.config.choice_for(SITE)
        assert selector.pick(10) == 0
        assert selector.pick(64) == 1
        assert selector.pick(1000) == 0

    def test_clone_is_independent(self):
        base = Candidate(config=ChoiceConfig())
        base.config.set_tunable("x", 1)
        clone = base.clone("child")
        clone.config.set_tunable("x", 2)
        assert base.config.tunable("x", 0) == 1

    def test_dedupe(self):
        a = Candidate(config=ChoiceConfig())
        b = Candidate(config=ChoiceConfig())
        c = set_tunable(a, "k", 3)
        assert len(dedupe([a, b, c])) == 2


class TestEvaluator:
    def test_time_is_deterministic(self, treesum):
        ev = Evaluator(treesum, "TreeSum", treesum_inputs, MACHINES["xeon8"])
        config = ChoiceConfig()
        assert ev.time(config, 64) == ev.time(config, 64)

    def test_cache_counts_evaluations(self, treesum):
        ev = Evaluator(treesum, "TreeSum", treesum_inputs, MACHINES["xeon8"])
        config = ChoiceConfig()
        ev.time(config, 32)
        ev.time(config, 32)
        assert ev.evaluations == 1

    def test_parallel_split_beats_direct_on_8_cores(self, treesum):
        ev = Evaluator(treesum, "TreeSum", treesum_inputs, MACHINES["xeon8"])
        direct = ChoiceConfig()
        direct.set_choice(SITE, Selector.static(0))
        hybrid = ChoiceConfig()
        # split down to 4096-element chunks, then direct.
        hybrid.set_choice(SITE, Selector(((4097, 0), (None, 1))))
        size = 65536
        assert ev.time(hybrid, size) < ev.time(direct, size)

    def test_direct_wins_on_1_core(self, treesum):
        ev = Evaluator(treesum, "TreeSum", treesum_inputs, MACHINES["xeon1"])
        direct = ChoiceConfig()
        direct.set_choice(SITE, Selector.static(0))
        hybrid = ChoiceConfig()
        hybrid.set_choice(SITE, Selector(((4097, 0), (None, 1))))
        size = 65536
        assert ev.time(direct, size) <= ev.time(hybrid, size)

    def test_time_order_independent(self, treesum):
        """Regression (ISSUE 2): a measurement is a pure function of
        (seed, signature, size, trial) — interleaving, repeating, or
        reordering evaluations must not change any value."""
        direct = ChoiceConfig()
        direct.set_choice(SITE, Selector.static(0))
        hybrid = ChoiceConfig()
        hybrid.set_choice(SITE, Selector(((257, 0), (None, 1))))
        plan_a = [(direct, 256), (direct, 512), (hybrid, 256), (hybrid, 512)]
        plan_b = [(hybrid, 512), (direct, 256), (hybrid, 512), (hybrid, 256),
                  (direct, 512), (direct, 256)]

        def run_plan(plan):
            ev = Evaluator(
                treesum, "TreeSum", treesum_inputs, MACHINES["xeon8"]
            )
            times = {}
            for config, size in plan:
                times[(config.to_json(), size)] = ev.time(config, size)
            return times

        times_a, times_b = run_plan(plan_a), run_plan(plan_b)
        for key, value in times_a.items():
            assert times_b[key] == value

    def test_run_once_independent_of_history(self, treesum):
        """The same trial yields the same schedule no matter what ran
        before it on the same evaluator instance."""
        ev = Evaluator(treesum, "TreeSum", treesum_inputs, MACHINES["xeon8"])
        hybrid = ChoiceConfig()
        hybrid.set_choice(SITE, Selector(((257, 0), (None, 1))))
        _, first = ev.run_once(hybrid, 2048, trial=0)
        for size in (64, 128, 4096):
            ev.time(ChoiceConfig(), size)
        _, again = ev.run_once(hybrid, 2048, trial=0)
        assert again.makespan == first.makespan
        assert again.steals == first.steals

    def test_measurement_seed_distinguishes_identity(self):
        from repro.autotuner.evaluation import measurement_seed

        base = measurement_seed(1, "sig", 64, 0)
        assert measurement_seed(1, "sig", 64, 0) == base
        assert measurement_seed(2, "sig", 64, 0) != base
        assert measurement_seed(1, "gis", 64, 0) != base
        assert measurement_seed(1, "sig", 65, 0) != base
        assert measurement_seed(1, "sig", 64, 1) != base

    def test_pure_recursion_fails(self, treesum):
        ev = Evaluator(treesum, "TreeSum", treesum_inputs, MACHINES["xeon8"])
        config = ChoiceConfig()
        config.set_choice(SITE, Selector.static(1))
        with pytest.raises(Exception, match="recursion"):
            ev.time(config, 64)


class TestGeneticTuner:
    @pytest.fixture(scope="class")
    def tuned_xeon8(self, treesum):
        ev = Evaluator(treesum, "TreeSum", treesum_inputs, MACHINES["xeon8"])
        tuner = GeneticTuner(
            ev, min_size=64, max_size=16384, population_size=6,
            tunable_rounds=0, refine_passes=0,
        )
        return ev, tuner.tune()

    def test_tuned_beats_both_seeds(self, treesum, tuned_xeon8):
        ev, result = tuned_xeon8
        size = 16384
        direct = ChoiceConfig()
        direct.set_choice(SITE, Selector.static(0))
        assert ev.time(result.config, size) <= ev.time(direct, size)

    def test_tuned_uses_hybrid_on_8_cores(self, tuned_xeon8):
        _, result = tuned_xeon8
        selector = result.config.choice_for(SITE)
        # Top level must be the parallel split, with the direct rule at
        # the bottom (a multi-level composition).
        assert selector.levels[-1][1] == 1
        assert selector.pick(1) == 0

    def test_history_recorded(self, tuned_xeon8):
        _, result = tuned_xeon8
        assert [log.size for log in result.history] == [
            64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384,
        ]

    def test_single_core_prefers_direct(self, treesum):
        ev = Evaluator(treesum, "TreeSum", treesum_inputs, MACHINES["xeon1"])
        tuner = GeneticTuner(
            ev, min_size=64, max_size=4096, population_size=6,
            tunable_rounds=0, refine_passes=0,
        )
        result = tuner.tune()
        selector = result.config.choice_for(SITE)
        assert selector.pick(4096) == 0

    def test_determinism_regression(self, treesum):
        """Fixed seed => byte-identical tuned config and identical history
        across two fresh tuner/evaluator instances."""
        outcomes = []
        for _ in range(2):
            ev = Evaluator(
                treesum, "TreeSum", treesum_inputs, MACHINES["xeon8"]
            )
            tuner = GeneticTuner(
                ev, min_size=64, max_size=1024, population_size=4,
                tunable_rounds=1, refine_passes=0, seed=0xA11,
            )
            result = tuner.tune()
            outcomes.append(result)
        assert outcomes[0].config.to_json() == outcomes[1].config.to_json()
        assert outcomes[0].best_time == outcomes[1].best_time
        assert [
            (log.size, log.best_time, log.best_lineage, log.evaluated)
            for log in outcomes[0].history
        ] == [
            (log.size, log.best_time, log.best_lineage, log.evaluated)
            for log in outcomes[1].history
        ]

    def test_candidate_timeline_emitted(self, treesum):
        from repro.observe import TraceSink

        sink = TraceSink()
        ev = Evaluator(
            treesum, "TreeSum", treesum_inputs, MACHINES["xeon8"], sink=sink
        )
        tuner = GeneticTuner(
            ev, min_size=64, max_size=256, population_size=4,
            tunable_rounds=0, refine_passes=0,
        )
        tuner.tune()
        candidates = sink.events_of("candidate")
        generations = sink.events_of("generation")
        assert len(candidates) == ev.evaluations
        assert sink.counter("tuner.evaluations") == ev.evaluations
        assert [g["size"] for g in generations] == [64, 128, 256]
        # generation bests must be reachable from the candidate records
        times_by_size = {}
        for event in candidates:
            times_by_size.setdefault(event["size"], []).append(event["time"])
        for generation in generations:
            assert generation["best_time"] in times_by_size[generation["size"]]


class TestConsistency:
    ROLLING = """
    transform RollingSum from A[n] to B[n]
    {
      to (B.cell(i) b) from (A.region(0, i+1) in) { b = sum(in); }
      to (B.cell(i) b) from (A.cell(i) a, B.cell(i-1) leftSum) {
        b = a + leftSum;
      }
    }
    """

    BROKEN = """
    transform Broken from A[n] to B[n]
    {
      to (B.cell(i) b) from (A.cell(i) a) { b = a; }
      to (B.cell(i) b) from (A.cell(i) a) { b = a + 1; }
    }
    """

    @staticmethod
    def gen(size, rng):
        return [np.array([rng.uniform(0, 1) for _ in range(size)])]

    def test_consistent_program_passes(self):
        program = compile_program(self.ROLLING)
        compared = check_consistency(
            program, "RollingSum", self.gen, sizes=[1, 7, 32], threshold=1e-9
        )
        assert all(count >= 2 for count in compared.values())

    def test_inconsistent_program_detected(self):
        program = compile_program(self.BROKEN)
        with pytest.raises(ConsistencyError):
            check_consistency(program, "Broken", self.gen, sizes=[8])

    def test_threshold_tolerates_small_differences(self):
        program = compile_program(self.BROKEN)
        check_consistency(program, "Broken", self.gen, sizes=[8], threshold=2.0)


class TestAccuracyUtilities:
    def test_accuracy_ratio(self):
        assert accuracy_ratio(100.0, 1.0) == 100.0
        assert accuracy_ratio(1.0, 0.0) == float("inf")

    def test_pareto_front(self):
        points = [
            Scored("slow-accurate", time=10.0, accuracy=1e9),
            Scored("fast-sloppy", time=1.0, accuracy=1e2),
            Scored("dominated", time=12.0, accuracy=1e8),
            Scored("mid", time=5.0, accuracy=1e5),
        ]
        front = {s.candidate for s in pareto_front(points)}
        assert front == {"slow-accurate", "fast-sloppy", "mid"}

    def test_fastest_per_bin(self):
        points = [
            Scored("a", time=1.0, accuracy=50.0),
            Scored("b", time=3.0, accuracy=2e3),
            Scored("c", time=9.0, accuracy=2e9),
        ]
        best = fastest_per_bin(points, bins=(1e1, 1e3, 1e9))
        assert best[1e1].candidate == "a"
        assert best[1e3].candidate == "b"
        assert best[1e9].candidate == "c"

    def test_unreachable_bin_is_none(self):
        best = fastest_per_bin(
            [Scored("a", time=1.0, accuracy=10.0)], bins=(1e5,)
        )
        assert best[1e5] is None
