"""Differential property test: cache-blocked schedules are invisible.

Hypothesis generates random chain-over-tiles programs — a versioned
plane ``S[t, x, y]`` where step ``t`` reads step ``t - 1`` at a random
``(dx, dy)`` offset.  The offset sign decides legality end to end:

* ``dx <= 0 and dy <= 0`` — every tile-crossing dependence points along
  the blocked order, the analyzer proves the site PB604-legal, and the
  engine really tiles (``exec.tiled_blocks > 0``).  Tiled, interchanged,
  and untiled runs must produce bit-identical outputs and write sets
  under all three leaf paths.
* ``dx > 0 or dy > 0`` — a dependence crosses tiles against the blocked
  order.  The site must never be reported legal, and the tile/
  interchange tunables must be graceful no-ops (the engine re-proves
  legality itself; ``exec.tiled_blocks == 0``).

Write sets are observable because output/through matrices are sentinel
-filled at allocation: an interchanged run that read a not-yet-written
neighbor tile would consume the sentinel and corrupt the output.
"""

from contextlib import contextmanager

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.depend import (
    schedule_candidates,
    validate_schedule_witness,
)
from repro.compiler import ChoiceConfig, compile_program
from repro.observe import TraceSink
from repro.runtime.matrix import Matrix

#: A value no generated program can produce from the bounded inputs.
SENTINEL = -987654321.25

LEAF_PATHS = (0, 1, 2)

#: knob sets every program is run under (beyond the bare reference)
KNOB_SETS = (
    {},
    {"__tile_i__": 1},
    {"__tile_i__": 2, "__tile_j__": 2},
    {"__tile_i__": 2, "__tile_j__": 1, "__interchange__": 1},
)


@contextmanager
def sentinel_alloc():
    """Allocate output/through matrices filled with SENTINEL instead of
    zeros, making the write set (and any premature read) observable."""

    def filled(shape, name="", dtype=np.float64):
        return Matrix(np.full(tuple(shape), SENTINEL, dtype=dtype), name)

    original = Matrix.zeros
    Matrix.zeros = staticmethod(filled)
    try:
        yield
    finally:
        Matrix.zeros = original


def _observe(transform, inputs, sizes, config, sink=None):
    with sentinel_alloc():
        result = transform.run(
            {k: v.copy() for k, v in inputs.items()},
            config,
            sizes=sizes,
            sink=sink,
        )
    outputs = {}
    writes = {}
    for name, matrix in result.outputs.items():
        outputs[name] = matrix.data.tobytes()
        writes[name] = (matrix.data != SENTINEL).tobytes()
    return outputs, writes


def _assert_schedule_invisible(transform, name, inputs, sizes):
    """Tiled/interchanged ≡ untiled under every leaf path; returns the
    total tiled-block count across all runs."""
    reference = None
    tiled_blocks = 0
    for leaf in LEAF_PATHS:
        for knobs in KNOB_SETS:
            config = ChoiceConfig()
            config.set_tunable(f"{name}.__leaf_path__", leaf)
            for knob, value in knobs.items():
                config.set_tunable(f"{name}.{knob}", value)
            sink = TraceSink()
            observed = _observe(transform, inputs, sizes, config, sink)
            tiled_blocks += sink.counter("exec.tiled_blocks")
            if reference is None:
                reference = observed
                continue
            assert observed[0] == reference[0], (
                f"leaf {leaf} knobs={knobs}: outputs differ"
            )
            assert observed[1] == reference[1], (
                f"leaf {leaf} knobs={knobs}: write sets differ"
            )
    return tiled_blocks


# -- random chain-over-tiles programs --------------------------------------


def chain_source(dx: int, dy: int, scale: float) -> str:
    """A versioned-plane program whose step rule reads the previous
    plane at offset ``(dx, dy)``; a secondary copy rule carries the
    cells the shifted read cannot reach."""
    return (
        "transform RChain\n"
        "from A[n + 2, m + 2]\n"
        "to B[n, m]\n"
        "through S<0..t_end>[n + 2, m + 2]\n"
        "{\n"
        "  to (S.cell(0, x, y) s) from (A.cell(x, y) a) { s = a; }\n"
        f"  to (S.cell(t, x, y) s)\n"
        f"  from (S.cell(t - 1, x + {dx}, y + {dy}) prev, A.cell(x, y) a)\n"
        f"  {{ s = prev * {scale!r} + a; }}\n"
        "  secondary to (S.cell(t, x, y) s)"
        " from (S.cell(t - 1, x, y) prev) { s = prev; }\n"
        "  to (B.cell(x, y) b) from (S.cell(t_end, x + 1, y + 1) s)"
        " { b = s; }\n"
        "}\n"
    )


def tiled_rule_labels(transform, name, inputs, sizes):
    """Labels of the rules that actually ran tiled under aggressive
    tile knobs on the vector path."""
    config = ChoiceConfig()
    config.set_tunable(f"{name}.__leaf_path__", 2)
    config.set_tunable(f"{name}.__tile_i__", 2)
    config.set_tunable(f"{name}.__tile_j__", 2)
    config.set_tunable(f"{name}.__interchange__", 1)
    result = transform.run(
        {k: v.copy() for k, v in inputs.items()}, config, sizes=sizes
    )
    return {
        task.label.split("[")[0]
        for task in result.graph.tasks
        if "[vec:tiled]" in task.label
    }


def interior_candidates(transform):
    """Candidates whose rule carries the shifted previous-plane read
    (the generated step rule is the only one reading at an offset)."""
    return [
        cand
        for cand in schedule_candidates(transform)
        if cand.rule == "rule1"
    ]


@settings(max_examples=20, deadline=None)
@given(
    dx=st.integers(-1, 0),
    dy=st.integers(-1, 0),
    scale=st.floats(0.25, 1.75, allow_nan=False).map(
        lambda f: round(f, 3)
    ),
    n=st.integers(2, 5),
    m=st.integers(2, 5),
    steps=st.integers(1, 4),
    seed=st.integers(0, 2**16),
)
def test_legal_offsets_tile_invisibly(dx, dy, scale, n, m, steps, seed):
    source = chain_source(dx, dy, scale)
    transform = compile_program(source).transform("RChain")
    for cand in interior_candidates(transform):
        assert cand.status == "legal", cand.reason
    rng = np.random.default_rng(seed)
    inputs = {"A": rng.uniform(-2.0, 2.0, (n + 2, m + 2))}
    tiled_blocks = _assert_schedule_invisible(
        transform, "RChain", inputs, {"t_end": steps}
    )
    # The knob sets include real sub-extent tile sizes: tiling must
    # actually have engaged, or the property proved nothing.
    assert tiled_blocks > 0


@settings(max_examples=20, deadline=None)
@given(
    dx=st.integers(-1, 1),
    dy=st.integers(-1, 1),
    scale=st.floats(0.25, 1.75, allow_nan=False).map(
        lambda f: round(f, 3)
    ),
    n=st.integers(2, 5),
    m=st.integers(2, 5),
    steps=st.integers(1, 4),
    seed=st.integers(0, 2**16),
)
def test_forward_offsets_never_tile(dx, dy, scale, n, m, steps, seed):
    if dx <= 0 and dy <= 0:
        dx = 1  # force at least one against-the-order component
    source = chain_source(dx, dy, scale)
    transform = compile_program(source).transform("RChain")
    for cand in interior_candidates(transform):
        # Blocked when the witness hunt lands a concrete pair within
        # budget, ineligible otherwise — but never proven legal.
        assert cand.status != "legal"
        if cand.status == "blocked":
            assert validate_schedule_witness(transform, cand.witness)
    rng = np.random.default_rng(seed)
    inputs = {"A": rng.uniform(-2.0, 2.0, (n + 2, m + 2))}
    _assert_schedule_invisible(transform, "RChain", inputs, {"t_end": steps})
    # The engine's own re-proof must refuse to tile the offset rule
    # (the legal carry-forward rule may still tile its own segments).
    assert "rule1" not in tiled_rule_labels(
        transform, "RChain", inputs, {"t_end": steps}
    )


# -- deterministic cases ---------------------------------------------------

MATMUL_CHAIN = """
transform MatMulChain
from A[n, p], B[p, m]
through S[p + 1, n, m]
to C[n, m]
{
  to (S.cell(0, i, j) s) from () { s = 0.0; }
  to (S.cell(k, i, j) s)
  from (S.cell(k - 1, i, j) prev, A.cell(i, k - 1) a, B.cell(k - 1, j) b)
  {
    s = prev + a * b;
  }
  to (C.cell(i, j) c) from (S.cell(p, i, j) s) { c = s; }
}
"""


def test_matmul_chain_tiles_invisibly():
    transform = compile_program(MATMUL_CHAIN).transform("MatMulChain")
    rng = np.random.default_rng(13)
    inputs = {
        "A": rng.uniform(-2.0, 2.0, (5, 6)),
        "B": rng.uniform(-2.0, 2.0, (6, 4)),
    }
    tiled_blocks = _assert_schedule_invisible(
        transform, "MatMulChain", inputs, None
    )
    assert tiled_blocks > 0


def test_error_parity():
    """A failing run fails identically tiled and untiled."""
    transform = compile_program(MATMUL_CHAIN).transform("MatMulChain")
    bad_inputs = {"A": np.ones((3,)), "B": np.ones((3, 3))}  # 1-D A
    failures = []
    for knobs in ({}, {"__tile_i__": 2, "__interchange__": 1}):
        config = ChoiceConfig()
        config.set_tunable("MatMulChain.__leaf_path__", 2)
        for knob, value in knobs.items():
            config.set_tunable(f"MatMulChain.{knob}", value)
        with pytest.raises(Exception) as excinfo:
            transform.run(
                {k: v.copy() for k, v in bad_inputs.items()}, config
            )
        failures.append((type(excinfo.value), str(excinfo.value)))
    assert failures[0] == failures[1]
