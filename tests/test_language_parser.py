"""Tests for the DSL parser, including the paper's example programs."""

import pytest

from repro.language import (
    Assign,
    BinOp,
    Call,
    CellAccess,
    Num,
    ParseError,
    Var,
    parse_program,
    parse_transform,
)
from repro.symbolic import Affine

ROLLING_SUM = """
transform RollingSum
from A[n]
to B[n]
{
  // rule 0: sum all elements to the left
  to (B.cell(i) b) from (A.region(0, i) in) {
    b = sum(in);
  }
  // rule 1: use the previously computed value
  to (B.cell(i) b) from (A.cell(i) a, B.cell(i-1) leftSum) {
    b = a + leftSum;
  }
}
"""

MATRIX_MULTIPLY = """
transform MatrixMultiply
from A[c, h], B[w, c]
to AB[w, h]
{
  // Base case, compute a single element
  to (AB.cell(x, y) out) from (A.row(y) a, B.column(x) b) {
    out = dot(a, b);
  }
  // Recursively decompose in c
  to (AB ab)
  from (A.region(0, 0, c/2, h) a1,
        A.region(c/2, 0, c, h) a2,
        B.region(0, 0, w, c/2) b1,
        B.region(0, c/2, w, c) b2) {
    ab = MatrixAdd(MatrixMultiply(a1, b1), MatrixMultiply(a2, b2));
  }
  // Recursively decompose in w
  to (AB.region(0, 0, w/2, h) ab1,
      AB.region(w/2, 0, w, h) ab2)
  from (A a, B.region(0, 0, w/2, c) b1, B.region(w/2, 0, w, c) b2) {
    ab1 = MatrixMultiply(a, b1);
    ab2 = MatrixMultiply(a, b2);
  }
  // Recursively decompose in h
  to (AB.region(0, 0, w, h/2) ab1,
      AB.region(0, h/2, w, h) ab2)
  from (A.region(0, 0, c, h/2) a1, A.region(0, h/2, c, h) a2, B b) {
    ab1 = MatrixMultiply(a1, b);
    ab2 = MatrixMultiply(a2, b);
  }
}
"""


class TestRollingSum:
    def test_header(self):
        t = parse_transform(ROLLING_SUM)
        assert t.name == "RollingSum"
        assert [m.name for m in t.from_matrices] == ["A"]
        assert [m.name for m in t.to_matrices] == ["B"]
        assert t.size_variables == ("n",)

    def test_rule_count(self):
        t = parse_transform(ROLLING_SUM)
        assert len(t.rules) == 2

    def test_rule0_bindings(self):
        rule0 = parse_transform(ROLLING_SUM).rules[0]
        (to_bind,) = rule0.to_bindings
        assert to_bind.matrix == "B"
        assert to_bind.accessor == "cell"
        assert to_bind.name == "b"
        assert to_bind.args[0].to_affine() == Affine.var("i")
        (from_bind,) = rule0.from_bindings
        assert from_bind.accessor == "region"
        assert from_bind.name == "in"

    def test_rule1_offset_dependency(self):
        rule1 = parse_transform(ROLLING_SUM).rules[1]
        left_sum = rule1.from_bindings[1]
        assert left_sum.args[0].to_affine() == Affine.var("i") - 1

    def test_rule_bodies(self):
        rules = parse_transform(ROLLING_SUM).rules
        (stmt0,) = rules[0].body
        assert isinstance(stmt0.value, Call) and stmt0.value.name == "sum"
        (stmt1,) = rules[1].body
        assert isinstance(stmt1.value, BinOp) and stmt1.value.op == "+"


class TestMatrixMultiply:
    def test_parses(self):
        t = parse_transform(MATRIX_MULTIPLY)
        assert t.name == "MatrixMultiply"
        assert len(t.rules) == 4

    def test_two_dimensional_matrices(self):
        t = parse_transform(MATRIX_MULTIPLY)
        a = t.matrix("A")
        assert a.ndim == 2
        assert a.dims[0].to_affine() == Affine.var("c")

    def test_base_case_uses_row_and_column(self):
        rule0 = parse_transform(MATRIX_MULTIPLY).rules[0]
        accessors = [b.accessor for b in rule0.from_bindings]
        assert accessors == ["row", "column"]

    def test_recursive_rule_region_args(self):
        rule1 = parse_transform(MATRIX_MULTIPLY).rules[1]
        a1 = rule1.from_bindings[0]
        c = Affine.var("c")
        h = Affine.var("h")
        assert [arg.to_affine() for arg in a1.args] == [
            Affine.const(0), Affine.const(0), c / 2, h,
        ]

    def test_multi_output_rule(self):
        rule2 = parse_transform(MATRIX_MULTIPLY).rules[2]
        assert len(rule2.to_bindings) == 2
        assert [b.name for b in rule2.to_bindings] == ["ab1", "ab2"]

    def test_nested_transform_calls(self):
        rule1 = parse_transform(MATRIX_MULTIPLY).rules[1]
        (stmt,) = rule1.body
        assert isinstance(stmt.value, Call) and stmt.value.name == "MatrixAdd"
        inner = stmt.value.args[0]
        assert isinstance(inner, Call) and inner.name == "MatrixMultiply"

    def test_bare_matrix_binding(self):
        rule2 = parse_transform(MATRIX_MULTIPLY).rules[2]
        a_bind = rule2.from_bindings[0]
        assert a_bind.accessor == "all"
        assert a_bind.matrix == "A" and a_bind.name == "a"


class TestHeaders:
    def test_through_matrices(self):
        t = parse_transform(
            """
            transform T
            from A[n] to B[n] through Tmp[n]
            { to (B b) from (A a, Tmp t) { b = a; } }
            """
        )
        assert [m.name for m in t.through_matrices] == ["Tmp"]

    def test_generator(self):
        t = parse_transform(
            """
            transform T from A[n] to B[n] generator RandomInput
            { to (B b) from (A a) { b = a; } }
            """
        )
        assert t.generator == "RandomInput"

    def test_tunable(self):
        t = parse_transform(
            """
            transform T from A[n] to B[n]
            tunable blockSize(1, 1024, 64);
            { to (B b) from (A a) { b = a; } }
            """
        )
        (tun,) = t.tunables
        assert (tun.name, tun.lo, tun.hi, tun.default) == ("blockSize", 1, 1024, 64)

    def test_matrix_version(self):
        t = parse_transform(
            """
            transform Iterate from X<0..k>[n] to Y[n]
            { to (Y y) from (X x) { y = sum(x); } }
            """
        )
        x = t.matrix("X")
        assert x.version is not None
        assert x.ndim == 2

    def test_template_param(self):
        t = parse_transform(
            """
            transform T template <CUTOFF, 1, 512> from A[n] to B[n]
            { to (B b) from (A a) { b = a; } }
            """
        )
        assert t.template_params == (("CUTOFF", 1, 512),)

    def test_scalar_matrix(self):
        t = parse_transform(
            """
            transform Norm from A[n] to S
            { to (S s) from (A a) { s = sum(a); } }
            """
        )
        assert t.matrix("S").ndim == 0


class TestRules:
    def test_priorities(self):
        t = parse_transform(
            """
            transform T from A[n] to B[n]
            {
              primary to (B.cell(i) b) from (A.cell(i) a) { b = a; }
              secondary to (B.cell(i) b) from () { b = 0; }
              priority(3) to (B.cell(i) b) from () { b = 1; }
            }
            """
        )
        assert [r.priority for r in t.rules] == [0, 2, 3]

    def test_where_clause(self):
        t = parse_transform(
            """
            transform T from A[n] to B[n]
            {
              to (B.cell(i) b) from (A.cell(i) a) where i > 0, i < n - 1 {
                b = a;
              }
            }
            """
        )
        rule = t.rules[0]
        assert len(rule.where) == 2
        assert isinstance(rule.where[0].condition, BinOp)

    def test_escape_block_captured(self):
        t = parse_transform(
            """
            transform T from A[n] to B[n]
            { to (B b) from (A a) { %{ external_call(); }% b = a; } }
            """
        )
        assert "external_call" in t.rules[0].escapes[0]

    def test_compound_assignment(self):
        t = parse_transform(
            """
            transform T from A[n] to B
            { to (B b) from (A a) { b = 0; b += sum(a); } }
            """
        )
        assert t.rules[0].body[1].op == "+="

    def test_ternary_and_comparisons(self):
        t = parse_transform(
            """
            transform T from A[n] to B[n]
            { to (B.cell(i) b) from (A.cell(i) a) { b = a > 0 ? a : -a; } }
            """
        )
        stmt = t.rules[0].body[0]
        assert stmt.value.__class__.__name__ == "Ternary"


class TestErrors:
    def test_missing_outputs(self):
        with pytest.raises(ParseError):
            parse_transform("transform T from A[n] { to (A a) from () { a = 0; } }")

    def test_no_rules(self):
        with pytest.raises(ParseError):
            parse_transform("transform T from A[n] to B[n] { }")

    def test_missing_to_clause(self):
        with pytest.raises(ParseError):
            parse_transform(
                "transform T from A[n] to B[n] { from (A a) { a = 0; } }"
            )

    def test_bad_accessor(self):
        with pytest.raises(ParseError):
            parse_transform(
                "transform T from A[n] to B[n]"
                "{ to (B.diag(i) b) from () { b = 0; } }"
            )

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_transform(
                "transform T from A[n] to B[n]"
                "{ to (B b) from (A a) { b = a } }"
            )

    def test_multiple_transforms_via_parse_transform(self):
        two = "transform T1 to B[n] {to (B b) from () {b=0;}}" \
              "transform T2 to C[n] {to (C c) from () {c=0;}}"
        with pytest.raises(ParseError):
            parse_transform(two)
        assert len(parse_program(two).transforms) == 2

    def test_non_affine_region_coordinate(self):
        t = parse_transform(
            "transform T from A[n] to B[n]"
            "{ to (B.cell(i) b) from (A.cell(i*i) a) { b = a; } }"
        )
        with pytest.raises(ValueError):
            t.rules[0].from_bindings[0].args[0].to_affine()
