"""Unit tests for the legality-gated schedule rewrites (tiling and
interchange).

Covers the PB604/PB605 analyzer verdicts with their replay-validated
witnesses, the `repro.rewrite.tile` / `repro.rewrite.interchange`
annotation rewrites (including fuse-then-tile composition), the
engine's cache-blocked vector execution behind the `__tile_i__` /
`__tile_j__` / `__interchange__` tunables, the genetic tuner gating on
`has_tiling()`, the LRU-bounded geometry caches, and the CLI surface.
"""

import dataclasses

import numpy as np
import pytest

from repro.analysis.depend import (
    check_depend,
    schedule_candidates,
    validate_schedule_witness,
)
from repro.cli import main
from repro.compiler import ChoiceConfig, compile_program
from repro.engine_fast import LRUCache
from repro.observe import TraceSink
from repro.rewrite import (
    ScheduleError,
    apply_interchange,
    apply_tiling,
    fuse_transform,
    interchange_transform,
    tile_transform,
    transform_src,
)

# Matrix multiply as a rolling reduction: k is a sequential chain,
# (i, j) stay data parallel — the canonical PB604-legal shape.
MATMUL_CHAIN = """
transform MatMulChain
from A[n, p], B[p, m]
through S[p + 1, n, m]
to C[n, m]
{
  to (S.cell(0, i, j) s) from () { s = 0.0; }
  to (S.cell(k, i, j) s)
  from (S.cell(k - 1, i, j) prev, A.cell(i, k - 1) a, B.cell(k - 1, j) b)
  {
    s = prev + a * b;
  }
  to (C.cell(i, j) c) from (S.cell(p, i, j) s) { c = s; }
}
"""

# Wavefront stencil: the interior rule reads neighbor columns of the
# previous step, so an (i)-tile boundary can be crossed against the
# blocked order — the canonical PB605-blocked shape.
HEAT = """
transform Heat
from A[n]
to B[n]
through U<0..k>[n]
{
  to (U.cell(0, i) u) from (A.cell(i) a) { u = a; }
  to (U.cell(t, i) u)
  from (U.cell(t-1, i-1) l, U.cell(t-1, i) m, U.cell(t-1, i+1) r)
  {
    u = (l + 2 * m + r) / 4;
  }
  secondary to (U.cell(t, i) u) from (U.cell(t-1, i) m) { u = m; }
  to (B.cell(i) b) from (U.cell(k, i) u) { b = u; }
}
"""

# A fusible elementwise producer feeding a chain consumer: fusion
# eliminates T, and the fused rule still has chain q over free (i, j) —
# the fuse-then-tile composition case.
FUSE_TILE = """
transform FuseTile
from A[n, m]
through T[n, m], S[q_end + 1, n, m]
to B[n, m]
{
  to (T.cell(i, j) t) from (A.cell(i, j) a) { t = a * 2.0 + 1.0; }
  to (S.cell(0, i, j) s) from () { s = 0.0; }
  to (S.cell(q, i, j) s)
  from (S.cell(q - 1, i, j) prev, T.cell(i, j) t)
  {
    s = prev * 0.5 + t;
  }
  to (B.cell(i, j) b) from (S.cell(q_end, i, j) s) { b = s; }
}
"""

PIPE = """
transform Pipe
from A[n, m]
through T[n, m]
to B[n, m]
{
  to (T.cell(x, y) t) from (A.cell(x, y) a) { t = a * 2.0 + 1.0; }
  to (B.cell(x, y) b) from (T.cell(x, y) t) { b = t * 1.5 - 0.5; }
}
"""


def compiled(source, name):
    return compile_program(source).transform(name)


def run_bytes(transform, inputs, config=None, sizes=None, sink=None):
    result = transform.run(
        {k: v.copy() for k, v in inputs.items()}, config, sizes=sizes,
        sink=sink,
    )
    return {
        name: matrix.data.tobytes() for name, matrix in result.outputs.items()
    }


def config_with(transform, **tunables):
    config = ChoiceConfig()
    for name, value in tunables.items():
        config.set_tunable(f"{transform}.{name}", value)
    return config


def mm_inputs(seed=0, n=6, p=5, m=7):
    rng = np.random.default_rng(seed)
    return {
        "A": rng.uniform(-2.0, 2.0, (n, p)),
        "B": rng.uniform(-2.0, 2.0, (p, m)),
    }


# -- analyzer verdicts (PB604 golden / PB605 blocked) ----------------------


class TestScheduleCandidates:
    def test_matmul_chain_is_legal(self):
        mm = compiled(MATMUL_CHAIN, "MatMulChain")
        cands = schedule_candidates(mm)
        assert [c.status for c in cands] == ["legal"]
        cand = cands[0]
        assert cand.segment == "S.1"
        assert cand.chain_vars == ("k",)
        assert cand.free_vars == ("i", "j")
        assert cand.witness is None

    def test_heat_interior_is_blocked_with_witness(self):
        heat = compiled(HEAT, "Heat")
        blocked = [
            c for c in schedule_candidates(heat) if c.status == "blocked"
        ]
        assert len(blocked) == 1
        cand = blocked[0]
        assert "crosses tiles against the blocked order" in cand.reason
        assert cand.witness is not None
        assert validate_schedule_witness(heat, cand.witness)
        # The boundary carry-forward rules only read their own column
        # (zero free offset): legal despite sharing the segment matrix.
        assert any(c.status == "legal" for c in schedule_candidates(heat))

    def test_witness_replay_rejects_tampering(self):
        heat = compiled(HEAT, "Heat")
        witness = next(
            c.witness
            for c in schedule_candidates(heat)
            if c.status == "blocked"
        )
        # A cell outside the writer's region fails containment.
        bad_cell = dataclasses.replace(
            witness, cell=tuple(coord + 50 for coord in witness.cell)
        )
        assert not validate_schedule_witness(heat, bad_cell)
        # Writer and reader must be distinct instances.
        same_instance = dataclasses.replace(witness, reader=witness.writer)
        assert not validate_schedule_witness(heat, same_instance)
        # The rule id must exist.
        bad_rule = dataclasses.replace(witness, rule_id=99)
        assert not validate_schedule_witness(heat, bad_rule)

    def test_check_depend_emits_pb604_and_pb605(self):
        mm_codes = [d.code for d in check_depend(compiled(MATMUL_CHAIN, "MatMulChain"))]
        assert "PB604" in mm_codes and "PB605" not in mm_codes
        heat_diags = check_depend(compiled(HEAT, "Heat"))
        heat_codes = [d.code for d in heat_diags]
        assert "PB604" in heat_codes and "PB605" in heat_codes
        pb605 = next(d for d in heat_diags if d.code == "PB605")
        assert pb605.witness  # witness rule: never emitted unproven

    def test_elementwise_pipeline_has_no_candidates(self):
        # No sequential chain anywhere: nothing to tile against.
        assert schedule_candidates(compiled(PIPE, "Pipe")) == []


# -- the tile / interchange rewrites ---------------------------------------


class TestScheduleRewrites:
    def test_apply_tiling_annotates_and_round_trips(self):
        mm = compiled(MATMUL_CHAIN, "MatMulChain")
        tiled, applied = tile_transform(mm, sizes=4)
        assert [c.segment for c in applied] == ["S.1"]
        source = transform_src(tiled.ir)
        assert "tile(i: 4, j: 4)" in source
        reparsed = compile_program(source).transform("MatMulChain")
        inputs = mm_inputs(1)
        assert run_bytes(reparsed, inputs) == run_bytes(mm, inputs)

    def test_interchange_merges_with_tiling(self):
        mm = compiled(MATMUL_CHAIN, "MatMulChain")
        tiled, _ = tile_transform(mm, sizes={"j": 3})
        both, applied = interchange_transform(tiled)
        assert applied
        rule = next(r for r in both.ir.rules if r.schedule is not None)
        assert rule.schedule.tile == (("j", 3),)  # tile survived the merge
        assert rule.schedule.interchange
        source = transform_src(both.ir)
        assert "tile(j: 3) interchange" in source
        inputs = mm_inputs(2)
        assert run_bytes(
            compile_program(source).transform("MatMulChain"), inputs
        ) == run_bytes(mm, inputs)

    def test_blocked_candidate_is_refused(self):
        heat = compiled(HEAT, "Heat")
        blocked = next(
            c for c in schedule_candidates(heat) if c.status == "blocked"
        )
        with pytest.raises(ScheduleError, match="blocked, not legal"):
            apply_tiling(heat.ir, blocked)
        with pytest.raises(ScheduleError, match="blocked, not legal"):
            apply_interchange(heat.ir, blocked)

    def test_bad_tile_sizes_are_refused(self):
        mm = compiled(MATMUL_CHAIN, "MatMulChain")
        legal = schedule_candidates(mm)[0]
        with pytest.raises(ScheduleError, match=">= 1"):
            apply_tiling(mm.ir, legal, sizes=0)
        with pytest.raises(ScheduleError, match="no tile sizes"):
            apply_tiling(mm.ir, legal, sizes={"zz": 4})

    def test_fuse_then_tile_composes(self):
        ft = compiled(FUSE_TILE, "FuseTile")
        fused, fusions = fuse_transform(ft)
        assert fusions  # T was eliminated
        tiled, schedules = tile_transform(fused, sizes=2)
        assert schedules and schedules[0].chain_vars == ("q",)
        fused_rule = next(
            r for r in tiled.ir.rules if r.schedule is not None
        )
        assert "+" in fused_rule.label  # tiling landed on the *fused* rule
        rng = np.random.default_rng(3)
        inputs = {"A": rng.uniform(-1.0, 1.0, (5, 6))}
        config = config_with("FuseTile", __leaf_path__=2)
        assert run_bytes(
            tiled, inputs, config, sizes={"q_end": 4}
        ) == run_bytes(ft, inputs, sizes={"q_end": 4})


# -- engine execution behind the tunables ----------------------------------


class TestEngineTiling:
    @pytest.mark.parametrize("leaf", [0, 1, 2])
    @pytest.mark.parametrize(
        "knobs",
        [
            {},
            {"__tile_i__": 3},
            {"__tile_i__": 3, "__tile_j__": 4},
            {"__tile_i__": 2, "__tile_j__": 2, "__interchange__": 1},
        ],
    )
    def test_bit_identity_across_paths_and_tiles(self, leaf, knobs):
        mm = compiled(MATMUL_CHAIN, "MatMulChain")
        inputs = mm_inputs(4)
        reference = run_bytes(mm, inputs)
        config = config_with("MatMulChain", __leaf_path__=leaf, **knobs)
        assert run_bytes(mm, inputs, config) == reference

    def test_tiled_blocks_counter(self):
        mm = compiled(MATMUL_CHAIN, "MatMulChain")
        inputs = mm_inputs(5, n=6, p=4, m=7)
        config = config_with(
            "MatMulChain", __leaf_path__=2, __tile_i__=3, __tile_j__=4
        )
        sink = TraceSink()
        run_bytes(mm, inputs, config, sink=sink)
        # ceil(6/3) * ceil(7/4) = 4 tiles per step, 4 chain steps.
        assert sink.counter("exec.tiled_blocks") == 16

    def test_tile_knob_is_noop_on_blocked_site(self):
        heat = compiled(HEAT, "Heat")
        rng = np.random.default_rng(6)
        inputs = {"A": rng.uniform(-1.0, 1.0, 12)}
        reference = run_bytes(heat, inputs, sizes={"k": 3})
        config = config_with(
            "Heat", __leaf_path__=2, __tile_i__=4, __interchange__=1
        )
        sink = TraceSink()
        assert run_bytes(heat, inputs, config, sizes={"k": 3}, sink=sink) == (
            reference
        )
        # The interior wavefront rule is PB605-blocked and the boundary
        # rules are chain-only in this segment layout: nothing tiles.
        assert sink.counter("exec.tiled_blocks") == 0

    def test_has_tiling_gates(self):
        assert compiled(MATMUL_CHAIN, "MatMulChain").has_tiling()
        assert not compiled(PIPE, "Pipe").has_tiling()

    def test_oversized_tile_degrades_to_untiled(self):
        mm = compiled(MATMUL_CHAIN, "MatMulChain")
        inputs = mm_inputs(7)
        config = config_with(
            "MatMulChain", __leaf_path__=2, __tile_i__=1000, __tile_j__=1000
        )
        sink = TraceSink()
        reference = run_bytes(mm, inputs)
        assert run_bytes(mm, inputs, config, sink=sink) == reference
        assert sink.counter("exec.tiled_blocks") == 0


# -- config knobs ----------------------------------------------------------


class TestConfigKnobs:
    def test_tile_size_and_interchange_round_trip(self):
        config = ChoiceConfig()
        config.set_tunable("T.__tile_i__", 32)
        config.set_tunable("T.__tile_j__", -5)
        config.set_tunable("T.__interchange__", 3)
        assert config.tile_size("T", 0) == 32
        assert config.tile_size("T", 1) == 0  # negatives clamp to off
        assert config.tile_size("T", 0, default=8) == 32
        assert config.tile_size("U", 0, default=8) == 8
        assert config.interchange_enabled("T") == 1
        assert config.interchange_enabled("U") == 0
        reloaded = ChoiceConfig.from_json(config.to_json())
        assert reloaded.tile_size("T", 0) == 32


# -- tuner gating ----------------------------------------------------------


class TestTunerIntegration:
    def _tune(self, source, name, make_inputs):
        from repro.autotuner import Evaluator, GeneticTuner
        from repro.runtime import MACHINES

        program = compile_program(source)
        evaluator = Evaluator(program, name, make_inputs, MACHINES["xeon8"])
        tuner = GeneticTuner(
            evaluator,
            min_size=4,
            max_size=8,
            population_size=4,
            tunable_rounds=1,
            refine_passes=0,
        )
        return tuner.tune()

    def test_tile_knobs_searched_when_tiling_exists(self):
        def make_inputs(size, rng):
            np_rng = np.random.default_rng(rng.getrandbits(32))
            return [
                np_rng.random((size, max(2, size // 2))),
                np_rng.random((max(2, size // 2), size)),
            ]

        result = self._tune(MATMUL_CHAIN, "MatMulChain", make_inputs)
        assert "MatMulChain.__tile_i__" in result.config.tunables
        assert "MatMulChain.__tile_j__" in result.config.tunables
        assert "MatMulChain.__interchange__" in result.config.tunables

    def test_tile_knobs_absent_without_legal_tiling(self):
        def make_inputs(size, rng):
            np_rng = np.random.default_rng(rng.getrandbits(32))
            return [np_rng.random((size, size))]

        result = self._tune(PIPE, "Pipe", make_inputs)
        assert "Pipe.__tile_i__" not in result.config.tunables
        assert "Pipe.__interchange__" not in result.config.tunables


# -- LRU-bounded geometry caches -------------------------------------------


class TestLRUCache:
    def test_eviction_order_and_counter(self):
        cache = LRUCache(2)
        cache["a"] = 1
        cache["b"] = 2
        assert cache.get("a") == 1  # refresh: 'b' is now stalest
        cache["c"] = 3
        assert cache.evictions == 1
        assert "b" not in cache and "a" in cache and "c" in cache
        assert len(cache) == 2

    def test_overwrite_refreshes_without_evicting(self):
        cache = LRUCache(2)
        cache["a"] = 1
        cache["b"] = 2
        cache["a"] = 10
        cache["c"] = 3
        assert cache.evictions == 1
        assert "a" in cache and "b" not in cache

    def test_falsy_values_are_real_entries(self):
        cache = LRUCache(2)
        cache["empty"] = {}
        assert cache.get("empty", "missing") == {}
        assert cache.get("absent", "missing") == "missing"

    def test_limit_validation(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_geom_cache_eviction_counter_flows_to_sink(self):
        mm = compiled(MATMUL_CHAIN, "MatMulChain")
        mm._geom_cache = LRUCache(1)  # force churn across segments
        sink = TraceSink()
        run_bytes(
            mm, mm_inputs(8), config_with("MatMulChain", __leaf_path__=1),
            sink=sink,
        )
        assert sink.counter("exec.geom_cache_misses") > 1
        assert sink.counter("exec.geom_cache_evictions") > 0


# -- CLI surface -----------------------------------------------------------


class TestCli:
    @pytest.fixture()
    def mm_source(self, tmp_path):
        path = tmp_path / "mmchain.pbcc"
        path.write_text(MATMUL_CHAIN)
        return str(path)

    def test_list_shows_schedule_verdicts(self, mm_source, capsys):
        assert main(["rewrite", mm_source]) == 0
        out = capsys.readouterr().out
        assert "schedule S.1/rule1 legal" in out

    def test_apply_tile_interchange_emits_annotated_source(
        self, mm_source, capsys
    ):
        assert main(
            ["rewrite", mm_source, "--apply", "--tile", "8", "--interchange"]
        ) == 0
        out = capsys.readouterr().out
        assert "tile(i: 8, j: 8) interchange" in out

    def test_json_includes_schedule_candidates(self, mm_source, capsys):
        import json

        assert main(["rewrite", mm_source, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        sched = payload["transforms"]["MatMulChain"]["schedule_candidates"]
        assert sched[0]["status"] == "legal"
        assert sched[0]["chain_vars"] == ["k"]

    def test_apply_on_native_bodies_exits_2_with_diagnostic(self, capsys):
        # The bundled matmul app builds its rules natively (no DSL
        # source form), so --apply must refuse with a structured
        # diagnostic, not a traceback.
        import repro.apps.matmul as matmul_app

        code = main(["rewrite", matmul_app.__file__, "--apply"])
        err = capsys.readouterr().err
        assert code == 2
        assert "error[PB001]" in err
        assert "native body" in err

    def test_unloadable_python_module_exits_2(self, tmp_path, capsys):
        module = tmp_path / "broken.py"
        module.write_text("raise RuntimeError('boom')\n")
        assert main(["rewrite", str(module)]) == 2
        assert "error[PB001]" in capsys.readouterr().err
