"""Tests for the symmetric tridiagonal eigenproblem benchmark."""

import numpy as np
import pytest

from repro.apps import eigen as eig_app
from repro.autotuner import Evaluator
from repro.compiler import ChoiceConfig, Selector
from repro.runtime import MACHINES


@pytest.fixture(scope="module")
def program():
    return eig_app.build_program()


def static_config(option):
    config = ChoiceConfig()
    config.set_choice(eig_app.EIG_SITE, Selector.static(option))
    return config


def check(d, e, lam, Q, tol=1e-7):
    n = d.shape[0]
    T = np.diag(d)
    if n > 1:
        T += np.diag(e, -1) + np.diag(e, 1)
    np.testing.assert_allclose(lam, np.linalg.eigvalsh(T), atol=tol)
    residual = T @ Q - Q * lam[None, :]
    assert np.max(np.abs(residual)) < 1e-6


def random_input(n, seed=0):
    rng = np.random.default_rng(seed)
    d = rng.standard_normal(n)
    e = rng.standard_normal(max(0, n - 1))
    return d, e


class TestPacking:
    def test_roundtrip(self):
        d, e = random_input(5)
        T = eig_app.pack_input(d, e)
        assert T.shape == (2, 5)
        np.testing.assert_allclose(T[0], d)
        np.testing.assert_allclose(T[1, :4], e)

    def test_unpack(self):
        vl = np.arange(12, dtype=float).reshape(4, 3)
        lam, Q = eig_app.unpack_output(vl)
        assert lam.shape == (3,) and Q.shape == (3, 3)


class TestCorrectness:
    @pytest.mark.parametrize("option", [0, 1])
    @pytest.mark.parametrize("n", [1, 2, 7, 24])
    def test_flat_algorithms(self, program, option, n):
        d, e = random_input(n, seed=n * 7 + option)
        result = program.transform("Eig").run(
            [eig_app.pack_input(d, e)], static_config(option)
        )
        lam, Q = eig_app.unpack_output(result.output("VL"))
        check(d, e, lam, Q)

    @pytest.mark.parametrize("n", [3, 16, 33])
    def test_dc_recursive(self, program, n):
        d, e = random_input(n, seed=n)
        result = program.transform("Eig").run(
            [eig_app.pack_input(d, e)], static_config(2)
        )
        lam, Q = eig_app.unpack_output(result.output("VL"))
        check(d, e, lam, Q)

    def test_cutoff25_config(self, program):
        d, e = random_input(60, seed=42)
        result = program.transform("Eig").run(
            [eig_app.pack_input(d, e)], eig_app.cutoff_config(25)
        )
        lam, Q = eig_app.unpack_output(result.output("VL"))
        check(d, e, lam, Q)

    def test_all_options_agree(self, program):
        d, e = random_input(20, seed=5)
        results = []
        for option in range(3):
            result = program.transform("Eig").run(
                [eig_app.pack_input(d, e)], static_config(option)
            )
            lam, _ = eig_app.unpack_output(result.output("VL"))
            results.append(lam)
        np.testing.assert_allclose(results[0], results[1], atol=1e-7)
        np.testing.assert_allclose(results[0], results[2], atol=1e-7)


class TestCostModel:
    def time_of(self, program, config, n, machine="xeon8"):
        ev = Evaluator(
            program, "Eig", eig_app.input_generator, MACHINES[machine]
        )
        return ev.time(config, n)

    def test_dc_with_cutoff_beats_pure_qr(self, program):
        n = 128
        assert self.time_of(program, eig_app.cutoff_config(25), n) < self.time_of(
            program, static_config(0), n
        )

    def test_bisection_parallelism(self, program):
        """Bisection is embarrassingly parallel: big 1->8 core speedup."""
        ev1 = Evaluator(program, "Eig", eig_app.input_generator, MACHINES["xeon1"])
        ev8 = Evaluator(program, "Eig", eig_app.input_generator, MACHINES["xeon8"])
        config = static_config(1)
        speedup = ev1.time(config, 256) / ev8.time(config, 256)
        assert speedup > 4.0

    def test_qr_sequential(self, program):
        ev1 = Evaluator(program, "Eig", eig_app.input_generator, MACHINES["xeon1"])
        ev8 = Evaluator(program, "Eig", eig_app.input_generator, MACHINES["xeon8"])
        config = static_config(0)
        ratio = ev1.time(config, 128) / ev8.time(config, 128)
        assert ratio == pytest.approx(1.0, rel=0.05)
