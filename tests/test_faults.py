"""Tests for the fault-tolerance layer: the deterministic injector
(:mod:`repro.faults`), every recovery path of
:class:`~repro.autotuner.parallel.ParallelEvaluator` (crash -> retry ->
pool rebuild, hang -> deadline cull, repeat killer -> quarantine,
transient -> bounded backoff retries, pool collapse -> serial
degradation), the crash-safe measurement cache, and the acceptance
invariant: tuning under injected faults is byte-identical to a
fault-free run.
"""

import json
import os
import pickle

import pytest

from repro.apps import sort as sort_app
from repro.autotuner import GeneticTuner
from repro.autotuner.parallel import (
    CandidateFailure,
    EvaluatorSpec,
    MeasurementCache,
    ParallelEvaluator,
)
from repro.compiler import ChoiceConfig, Selector
from repro.faults import FaultInjector, FaultSpecError
from repro.faults.harness import (
    DEFAULT_TUNER_KWARGS,
    check_fault_tolerance,
    fault_sweep,
)
from repro.observe import TraceSink

SORT_SPEC = EvaluatorSpec.make("repro.apps.sort:make_evaluator", "xeon8")

#: fast-recovery defaults for the unit tests: no backoff sleeps, short
#: deadlines, short injected hangs.
FAST = {"retry_backoff": 0.0}


def sort_batch(options, size=32):
    batch = []
    for option in options:
        config = ChoiceConfig()
        config.set_choice(sort_app.SORT_SITE, Selector.static(option))
        batch.append((config, size))
    return batch


def tune_sort(evaluator):
    return GeneticTuner(
        evaluator,
        threshold_metric=sort_app.size_metric,
        **DEFAULT_TUNER_KWARGS,
    ).tune()


@pytest.fixture(scope="module")
def serial_times():
    """Fault-free reference values for the sort measurement batches."""
    evaluator = ParallelEvaluator.from_spec(SORT_SPEC, jobs=1)
    evaluator.evaluate_batch(sort_batch((0, 1, 2, 3)))
    times = {
        (sig, size): evaluator._cache[(sig, size)]
        for (sig, size) in evaluator._cache
    }
    evaluator.close()
    return times


class TestSpecGrammar:
    def test_parse_describe_roundtrip(self):
        injector = FaultInjector.parse(
            "worker-crash:0.2,worker-hang:0.05,seed=7,hang=2"
        )
        assert injector.seed == 7
        assert injector.hang_seconds == 2.0
        assert FaultInjector.parse(injector.describe()) == injector

    def test_repeat_defaults(self):
        """p < 1 fires at most once; p >= 1 is persistent."""
        injector = FaultInjector.parse("worker-crash:0.5,worker-hang:1")
        by_kind = {rule.kind: rule for rule in injector.rules}
        assert by_kind["worker-crash"].repeat == 1
        assert by_kind["worker-hang"].repeat is None

    def test_explicit_repeat(self):
        injector = FaultInjector.parse("transient:1x3")
        assert injector.fires("transient", "id", 2)
        assert not injector.fires("transient", "id", 3)

    @pytest.mark.parametrize("bad", [
        "", "worker-crash", "worker-crash:abc", "worker-crash:-0.5",
        "unknown-fault:0.5", "worker-crash:0.5x0", "bogus=3",
        "worker-crash:0.5,hang=-1",
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(FaultSpecError):
            FaultInjector.parse(bad)

    def test_picklable(self):
        injector = FaultInjector.parse("worker-crash:0.3,seed=9")
        assert pickle.loads(pickle.dumps(injector)) == injector


class TestInjectorDecisions:
    def test_deterministic_across_instances(self):
        a = FaultInjector.parse("worker-crash:0.3,seed=5")
        b = FaultInjector.parse("worker-crash:0.3,seed=5")
        identities = [f"sig{i}|64" for i in range(500)]
        assert [a.fires("worker-crash", i) for i in identities] == \
               [b.fires("worker-crash", i) for i in identities]

    def test_probability_extremes(self):
        never = FaultInjector.parse("worker-crash:0x5")
        always = FaultInjector.parse("worker-crash:1")
        for attempt in range(4):
            assert not never.fires("worker-crash", "id", attempt)
            assert always.fires("worker-crash", "id", attempt)

    def test_probability_roughly_respected(self):
        injector = FaultInjector.parse("worker-crash:0.2")
        fired = sum(
            injector.fires("worker-crash", f"sig{i}|64") for i in range(2000)
        )
        assert 300 < fired < 500  # ~400 expected

    def test_unknown_kind_never_fires(self):
        injector = FaultInjector.parse("worker-crash:1")
        assert not injector.fires("worker-hang", "id", 0)

    def test_attempt_gating_enables_recovery(self):
        """The at-most-once default: whatever fires on attempt 0 is
        guaranteed not to fire on attempt 1."""
        injector = FaultInjector.parse(
            "worker-crash:0.9,worker-hang:0.9,transient:0.9"
        )
        for kind in ("worker-crash", "worker-hang", "transient"):
            for i in range(100):
                assert not injector.fires(kind, f"sig{i}", 1)


class TestCrashRecovery:
    def test_crash_retry_rebuild_identical_values(self, serial_times):
        """Every first attempt crashes the worker: the batch still
        resolves, via retries and a pool rebuild, to identical values."""
        sink = TraceSink(capture_events=False)
        evaluator = ParallelEvaluator.from_spec(
            SORT_SPEC, jobs=2, sink=sink,
            injector=FaultInjector.parse("worker-crash:1x1"), **FAST,
        )
        try:
            evaluator.evaluate_batch(sort_batch((0, 1, 2, 3)))
            for config, size in sort_batch((0, 1, 2, 3)):
                key = (config.to_json(), size)
                assert evaluator.time(config, size) == serial_times[key]
        finally:
            evaluator.close()
        assert sink.counter("tuner.pool.rebuilds") >= 1
        assert sink.counter("tuner.pool.retries") >= 1
        assert sink.counter("tuner.pool.quarantines") == 0

    def test_repeat_killer_quarantined(self):
        """A signature that kills every worker is quarantined and fails
        fast at every size from then on."""
        sink = TraceSink(capture_events=False)
        evaluator = ParallelEvaluator.from_spec(
            SORT_SPEC, jobs=2, sink=sink,
            injector=FaultInjector.parse("worker-crash:1"),
            quarantine_after=2, degrade_after=10, **FAST,
        )
        try:
            evaluator.evaluate_batch(sort_batch((0,)))
            config, size = sort_batch((0,))[0]
            with pytest.raises(CandidateFailure, match="quarantined"):
                evaluator.time(config, size)
            # Other sizes of the same signature fail without dispatch.
            dispatched = sink.counter("tuner.pool.dispatches")
            with pytest.raises(CandidateFailure, match="quarantined"):
                evaluator.time(config, 64)
            assert sink.counter("tuner.pool.dispatches") == dispatched
        finally:
            evaluator.close()
        assert sink.counter("tuner.pool.quarantines") == 1
        assert evaluator.quarantined_signatures

    def test_degrades_to_serial_after_pool_collapse(self, serial_times):
        """When the pool keeps dying without progress, the evaluator
        falls back to in-process evaluation and still produces correct
        values."""
        sink = TraceSink(capture_events=False)
        evaluator = ParallelEvaluator.from_spec(
            SORT_SPEC, jobs=2, sink=sink,
            injector=FaultInjector.parse("worker-crash:1"),
            quarantine_after=99, degrade_after=2, **FAST,
        )
        try:
            evaluator.evaluate_batch(sort_batch((0, 1)))
            assert evaluator.degraded
            for config, size in sort_batch((0, 1)):
                key = (config.to_json(), size)
                assert evaluator.time(config, size) == serial_times[key]
        finally:
            evaluator.close()
        assert sink.counter("tuner.degraded_serial") == 1


class TestDeadlines:
    def test_persistent_hang_culled_as_failure(self):
        """A measurement that hangs on every attempt misses its deadline
        max_retries+1 times and becomes a cached CandidateFailure."""
        sink = TraceSink(capture_events=False)
        evaluator = ParallelEvaluator.from_spec(
            SORT_SPEC, jobs=2, sink=sink,
            injector=FaultInjector.parse("worker-hang:1,hang=2"),
            measure_timeout=0.15, max_retries=1, **FAST,
        )
        try:
            evaluator.evaluate_batch(sort_batch((0,)))
            config, size = sort_batch((0,))[0]
            with pytest.raises(CandidateFailure, match="MeasurementTimeout"):
                evaluator.time(config, size)
            # The verdict is cached: probing again raises immediately.
            with pytest.raises(CandidateFailure, match="MeasurementTimeout"):
                evaluator.time(config, size)
        finally:
            evaluator.close()
        assert sink.counter("tuner.pool.timeouts") == 2  # initial + 1 retry
        assert sink.counter("tuner.pool.rebuilds") >= 1

    def test_one_shot_hang_recovered(self, serial_times):
        """A hang that fires once times out, is retried, and resolves to
        the identical measurement."""
        sink = TraceSink(capture_events=False)
        evaluator = ParallelEvaluator.from_spec(
            SORT_SPEC, jobs=2, sink=sink,
            injector=FaultInjector.parse("worker-hang:1x1,hang=1"),
            measure_timeout=0.2, **FAST,
        )
        try:
            evaluator.evaluate_batch(sort_batch((0, 1)))
            for config, size in sort_batch((0, 1)):
                key = (config.to_json(), size)
                assert evaluator.time(config, size) == serial_times[key]
        finally:
            evaluator.close()
        assert sink.counter("tuner.pool.timeouts") >= 1

    def test_timeout_failure_persisted_to_cache(self, tmp_path):
        """Timed-out candidates are cached failures, like any other
        nonviable candidate (the paper's culling)."""
        path = str(tmp_path / "cache.jsonl")
        evaluator = ParallelEvaluator.from_spec(
            SORT_SPEC, jobs=2, cache=path,
            injector=FaultInjector.parse("worker-hang:1,hang=2"),
            measure_timeout=0.15, max_retries=0, **FAST,
        )
        config, size = sort_batch((0,))[0]
        try:
            evaluator.evaluate_batch([(config, size)])
        finally:
            evaluator.close()
        warm = MeasurementCache(path)
        assert len(warm) == 1
        (record,) = warm._records.values()
        assert "MeasurementTimeout" in record["error"]


class TestTransientFaults:
    def test_transient_errors_retried_to_identical_values(self, serial_times):
        sink = TraceSink(capture_events=False)
        evaluator = ParallelEvaluator.from_spec(
            SORT_SPEC, jobs=2, sink=sink,
            injector=FaultInjector.parse("transient:0.9,corrupt-record:0.9"),
            **FAST,
        )
        try:
            evaluator.evaluate_batch(sort_batch((0, 1, 2, 3)))
            for config, size in sort_batch((0, 1, 2, 3)):
                key = (config.to_json(), size)
                assert evaluator.time(config, size) == serial_times[key]
        finally:
            evaluator.close()

    def test_exhausted_transient_not_persisted(self, tmp_path):
        """A transient failure that survives every retry fails the
        candidate for this run only — it must not poison the disk cache
        for later (healthy) runs."""
        path = str(tmp_path / "cache.jsonl")
        evaluator = ParallelEvaluator.from_spec(
            SORT_SPEC, jobs=2, cache=path,
            injector=FaultInjector.parse("transient:1"),
            max_retries=1, **FAST,
        )
        config, size = sort_batch((0,))[0]
        try:
            evaluator.evaluate_batch([(config, size)])
            with pytest.raises(CandidateFailure, match="TransientFault"):
                evaluator.time(config, size)
        finally:
            evaluator.close()
        assert len(MeasurementCache(path)) == 0

    def test_serial_mode_injects_transients_only(self, serial_times):
        """jobs=1 has no process boundary: crash/hang/corrupt-record
        faults are inert, transient faults are retried in place."""
        sink = TraceSink(capture_events=False)
        evaluator = ParallelEvaluator.from_spec(
            SORT_SPEC, jobs=1, sink=sink,
            injector=FaultInjector.parse(
                "worker-crash:1,worker-hang:1,corrupt-record:1,transient:0.9"
            ),
            **FAST,
        )
        try:
            evaluator.evaluate_batch(sort_batch((0, 1)))
            for config, size in sort_batch((0, 1)):
                key = (config.to_json(), size)
                assert evaluator.time(config, size) == serial_times[key]
        finally:
            evaluator.close()
        assert sink.counter("tuner.pool.retries") >= 1
        assert sink.counter("tuner.pool.rebuilds") == 0


class TestCrashSafeCache:
    KEY_FIELDS = {
        "machine": "xeon8", "workers": 8, "trials": 1,
        "seed": 20090615, "signature": '{"choices": {}}',
    }

    def _row(self, size, **extra):
        row = dict(self.KEY_FIELDS, size=size)
        row.update(extra or {"time": 1.0 * size, "tasks": 2, "steals": 0})
        return json.dumps(row, sort_keys=True)

    def test_corrupt_lines_skipped_counted_quarantined(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        good = [self._row(64), self._row(512, error="RecursionError: boom")]
        bad = [
            "{not json",                      # malformed JSON
            self._row(128)[:37],              # truncated mid-record
            '["a", "list", "row"]',           # wrong shape
        ]
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join([good[0], *bad, good[1]]) + "\n")

        cache = MeasurementCache(path)  # must not raise
        assert len(cache) == 2
        assert cache.corrupt_lines == 3
        sidecar = path + ".bad"
        assert os.path.exists(sidecar)
        with open(sidecar, encoding="utf-8") as handle:
            assert [line.strip() for line in handle] == bad

    def test_rows_missing_required_fields_skipped(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        complete = self._row(64)
        missing = [
            json.dumps({k: v for k, v in json.loads(self._row(128)).items()
                        if k != field}, sort_keys=True)
            for field in ("machine", "workers", "trials", "seed",
                          "signature", "size")
        ]
        mistyped = self._row(256, time="NaN-garbage", tasks=2, steals=0)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join([complete, *missing, mistyped]) + "\n")
        cache = MeasurementCache(path)
        assert len(cache) == 1
        assert cache.corrupt_lines == 7

    def test_extra_fields_tolerated(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(
                self._row(64, time=5.0, tasks=2, steals=0,
                          future_field="ignored") + "\n"
            )
        cache = MeasurementCache(path)
        assert len(cache) == 1
        key = ("xeon8", 8, 1, 20090615, '{"choices": {}}', 64)
        assert cache.lookup(key) == {"time": 5.0, "tasks": 2, "steals": 0}

    def test_corrupt_lines_surface_as_counter(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self._row(64) + "\n{broken\n")
        sink = TraceSink(capture_events=False)
        evaluator = ParallelEvaluator.from_spec(
            SORT_SPEC, jobs=1, cache=path, sink=sink
        )
        evaluator.close()
        assert sink.counter("tuner.cache.corrupt_lines") == 1

    def test_injected_cache_corruption_round_trip(self, tmp_path):
        """cache-corrupt faults garble flushed lines; the next load
        skips them and the measurements are simply re-run."""
        path = str(tmp_path / "cache.jsonl")
        first = ParallelEvaluator.from_spec(
            SORT_SPEC, jobs=1, cache=path,
            injector=FaultInjector.parse("cache-corrupt:1"), **FAST,
        )
        first.evaluate_batch(sort_batch((0, 1)))
        first.close()
        assert first.evaluations == 2

        warm = ParallelEvaluator.from_spec(SORT_SPEC, jobs=1, cache=path)
        warm.evaluate_batch(sort_batch((0, 1)))
        warm.close()
        assert warm.cache.corrupt_lines == 2
        assert warm.evaluations == 2  # lost records were re-measured


class TestKillMidRunResume:
    def test_killed_run_loses_at_most_one_batch(self, tmp_path):
        """A hard kill mid-batch (no close(), no flush) loses only the
        batch in flight; a warm restart re-runs just what was lost and
        lands on the byte-identical configuration."""
        cold = ParallelEvaluator.from_spec(SORT_SPEC, jobs=1)
        cold_result = tune_sort(cold)
        cold.close()
        total = cold.evaluations

        path = str(tmp_path / "cache.jsonl")
        killed = ParallelEvaluator.from_spec(SORT_SPEC, jobs=1, cache=path)
        batch_sizes = []
        original = ParallelEvaluator.evaluate_batch

        def tracking_batch(self, batch):
            batch_sizes.append(len(batch))
            return original(self, batch)

        kill_at = {"remaining": 10}
        original_measure = ParallelEvaluator.measure

        def killing_measure(self, config, size, signature=None):
            if kill_at["remaining"] == 0:
                raise KeyboardInterrupt("simulated SIGKILL")
            kill_at["remaining"] -= 1
            return original_measure(self, config, size, signature)

        killed.evaluate_batch = tracking_batch.__get__(killed)
        killed.measure = killing_measure.__get__(killed)
        with pytest.raises(KeyboardInterrupt):
            tune_sort(killed)
        # Deliberately NO close(): simulate a killed process.

        flushed = len(MeasurementCache(path))
        lost = killed.evaluations - flushed
        assert 0 <= lost <= max(batch_sizes)

        warm = ParallelEvaluator.from_spec(SORT_SPEC, jobs=1, cache=path)
        warm_result = tune_sort(warm)
        warm.close()
        assert warm_result.config.to_json() == cold_result.config.to_json()
        assert warm_result.best_time == cold_result.best_time
        assert warm.evaluations == total - flushed

    def test_interrupted_run_with_close_loses_nothing(self, tmp_path):
        """The CLI's try/finally path: an exception mid-tuning still
        flushes every completed measurement."""
        path = str(tmp_path / "cache.jsonl")
        evaluator = ParallelEvaluator.from_spec(SORT_SPEC, jobs=1, cache=path)
        batches = {"seen": 0}
        original = ParallelEvaluator.evaluate_batch

        def interrupting_batch(self, batch):
            if batches["seen"] == 3:
                raise RuntimeError("mid-generation failure")
            batches["seen"] += 1
            return original(self, batch)

        evaluator.evaluate_batch = interrupting_batch.__get__(evaluator)
        try:
            with pytest.raises(RuntimeError, match="mid-generation"):
                tune_sort(evaluator)
        finally:
            evaluator.close()
        assert len(MeasurementCache(path)) == evaluator.evaluations
        assert evaluator.evaluations > 0


class TestFaultToleranceHarness:
    """The acceptance bar: tuning under the issue's injection spec is
    byte-identical to a fault-free run."""

    def test_crash_and_hang_parity(self):
        report = check_fault_tolerance(
            SORT_SPEC,
            "worker-crash:0.2,worker-hang:0.05,hang=1",
            jobs=2,
            measure_timeout=0.3,
            retry_backoff=0.0,
            tuner_kwargs={"threshold_metric": sort_app.size_metric},
        )
        assert report.identical
        assert not report.degraded
        assert report.recovery_counter("tuner.pool.rebuilds") >= 1

    def test_all_fault_kinds_sweep(self):
        reports = fault_sweep(
            SORT_SPEC,
            "worker-crash:0.15,transient:0.1,corrupt-record:0.1",
            seeds=(1, 2),
            jobs=2,
            retry_backoff=0.0,
            tuner_kwargs={"threshold_metric": sort_app.size_metric},
        )
        assert all(report.identical for report in reports)
