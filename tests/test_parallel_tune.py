"""Tests for parallel candidate evaluation and the persistent
measurement cache (:mod:`repro.autotuner.parallel`).

The acceptance bar: ``repro tune --jobs N`` must produce a byte-identical
``TuneResult`` (config JSON + history) to ``--jobs 1`` on Sort and
MatrixMultiply, and a warm cache must eliminate every fresh evaluation.
Pool tests use tiny training sizes — correctness of the fan-out, not
speed, is under test here (speedup lives in
``benchmarks/bench_parallel_tune.py``).
"""

import json

import pytest

from repro.apps import matmul as matmul_app
from repro.apps import sort as sort_app
from repro.autotuner import GeneticTuner
from repro.autotuner.evaluation import Evaluator, config_signature
from repro.autotuner.parallel import (
    CandidateFailure,
    EvaluatorSpec,
    MeasurementCache,
    ParallelEvaluator,
)
from repro.compiler import ChoiceConfig, Selector

SORT_SPEC = EvaluatorSpec.make("repro.apps.sort:make_evaluator", "xeon8")
MATMUL_SPEC = EvaluatorSpec.make("repro.apps.matmul:make_evaluator", "xeon8")


def history_rows(result):
    return [
        (log.size, log.best_time, log.best_lineage, log.population,
         log.evaluated)
        for log in result.history
    ]


def tune_sort(evaluator, max_size=64):
    tuner = GeneticTuner(
        evaluator,
        min_size=16,
        max_size=max_size,
        population_size=4,
        tunable_rounds=1,
        refine_passes=0,
        threshold_metric=sort_app.size_metric,
    )
    return tuner.tune()


class TestMeasurementCache:
    KEY = ("xeon8", 8, 1, 20090615, '{"choices": {}}', 64)

    def test_roundtrip_through_jsonl(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        cache = MeasurementCache(path)
        cache.store(self.KEY, {"time": 12.5, "tasks": 3, "steals": 1})
        cache.store_failure(self.KEY[:5] + (128,), "RecursionError: boom")
        assert cache.flush() == 2

        reloaded = MeasurementCache(path)
        assert len(reloaded) == 2
        assert reloaded.lookup(self.KEY) == {
            "time": 12.5, "tasks": 3, "steals": 1,
        }
        assert reloaded.lookup(self.KEY[:5] + (128,)) == {
            "error": "RecursionError: boom"
        }

    def test_flush_appends_only_new_records(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        cache = MeasurementCache(path)
        cache.store(self.KEY, {"time": 1.0, "tasks": 1, "steals": 0})
        cache.flush()
        cache.store(self.KEY[:5] + (256,), {"time": 2.0, "tasks": 1, "steals": 0})
        cache.flush()
        lines = [
            json.loads(line)
            for line in open(path, encoding="utf-8")
            if line.strip()
        ]
        assert len(lines) == 2
        assert {row["size"] for row in lines} == {64, 256}

    def test_keyed_by_machine_profile(self):
        cache = MeasurementCache()
        cache.store(self.KEY, {"time": 1.0, "tasks": 1, "steals": 0})
        other_machine = ("niagara",) + self.KEY[1:]
        assert cache.lookup(other_machine) is None
        other_workers = (self.KEY[0], 4) + self.KEY[2:]
        assert cache.lookup(other_workers) is None

    def test_last_record_wins_on_duplicate_keys(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        first = MeasurementCache(path)
        first.store(self.KEY, {"time": 1.0, "tasks": 1, "steals": 0})
        first.flush()
        second = MeasurementCache(path)
        second.store(self.KEY, {"time": 9.0, "tasks": 2, "steals": 1})
        # force the duplicate to be appended
        second._dirty.append(self.KEY)
        second.flush()
        reloaded = MeasurementCache(path)
        assert reloaded.lookup(self.KEY)["time"] == 9.0


class TestEvaluatorSpec:
    def test_build_resolves_and_silences_sink(self):
        evaluator = SORT_SPEC.build()
        assert isinstance(evaluator, Evaluator)
        assert evaluator.transform.name == "Sort"
        assert evaluator.sink is None

    def test_bad_factory_reference_rejected(self):
        with pytest.raises(ValueError, match="module:callable"):
            EvaluatorSpec.make("repro.apps.sort").build()

    def test_non_evaluator_factory_rejected(self):
        with pytest.raises(TypeError, match="not an Evaluator"):
            EvaluatorSpec.make("repro.apps.sort:build_program").build()


class TestParallelEvaluator:
    def test_matches_serial_evaluator_values(self):
        serial = sort_app.make_evaluator("xeon8")
        parallel = ParallelEvaluator.from_spec(SORT_SPEC, jobs=1)
        config = ChoiceConfig()
        config.set_choice(sort_app.SORT_SITE, Selector(((65, 0), (None, 1))))
        for size in (16, 64, 256):
            assert parallel.time(config, size) == serial.time(config, size)

    def test_evaluate_batch_prefills_cache(self):
        parallel = ParallelEvaluator.from_spec(SORT_SPEC, jobs=1)
        configs = []
        for option in (0, 1, 2):
            config = ChoiceConfig()
            config.set_choice(sort_app.SORT_SITE, Selector.static(option))
            configs.append(config)
        parallel.evaluate_batch([(c, 32) for c in configs])
        assert parallel.evaluations == 3
        for config in configs:
            parallel.time(config, 32)
        assert parallel.evaluations == 3  # all hits, nothing fresh

    def test_failures_cached_and_raised(self, tmp_path):
        """A nonviable candidate fails once, is cached (in memory and on
        disk), and every later probe raises without re-simulating."""
        from repro.runtime import MACHINES
        from tests.test_autotuner import build_treesum, treesum_inputs

        path = str(tmp_path / "cache.jsonl")
        program = build_treesum()
        parallel = ParallelEvaluator(
            program, "TreeSum", treesum_inputs, MACHINES["xeon8"],
            jobs=1, cache=path,
        )
        bad = ChoiceConfig()
        bad.set_choice("TreeSum.S.0", Selector.static(1))  # recurse forever
        with pytest.raises(CandidateFailure, match="recursion"):
            parallel.time(bad, 64)
        assert parallel.evaluations == 0
        with pytest.raises(CandidateFailure):
            parallel.time(bad, 64)
        parallel.close()

        # The failure round-trips through the JSONL cache too.
        warm = ParallelEvaluator(
            program, "TreeSum", treesum_inputs, MACHINES["xeon8"],
            jobs=1, cache=path,
        )
        with pytest.raises(CandidateFailure, match="recursion"):
            warm.time(bad, 64)
        assert warm.evaluations == 0
        warm.close()

    def test_pool_batch_matches_serial_batch(self):
        """The real process pool returns bit-identical measurements."""
        serial = ParallelEvaluator.from_spec(SORT_SPEC, jobs=1)
        pooled = ParallelEvaluator.from_spec(SORT_SPEC, jobs=2)
        batch = []
        for option in (0, 1, 3):
            config = ChoiceConfig()
            config.set_choice(sort_app.SORT_SITE, Selector.static(option))
            batch.append((config, 64))
        try:
            serial.evaluate_batch(batch)
            pooled.evaluate_batch(batch)
            for config, size in batch:
                assert pooled.time(config, size) == serial.time(config, size)
            assert pooled.evaluations == serial.evaluations == 3
        finally:
            pooled.close()


class TestTuneParity:
    """`--jobs N` vs `--jobs 1`: byte-identical config and history."""

    def test_sort_jobs2_byte_identical(self):
        results = []
        for jobs in (1, 2):
            evaluator = ParallelEvaluator.from_spec(SORT_SPEC, jobs=jobs)
            try:
                results.append(tune_sort(evaluator))
            finally:
                evaluator.close()
        assert results[0].config.to_json() == results[1].config.to_json()
        assert results[0].best_time == results[1].best_time
        assert history_rows(results[0]) == history_rows(results[1])

    def test_matmul_jobs2_byte_identical(self):
        results = []
        for jobs in (1, 2):
            evaluator = ParallelEvaluator.from_spec(MATMUL_SPEC, jobs=jobs)
            tuner = GeneticTuner(
                evaluator,
                min_size=4,
                max_size=8,
                population_size=4,
                tunable_rounds=0,
                refine_passes=0,
                threshold_metric=matmul_app.size_metric,
            )
            try:
                results.append(tuner.tune())
            finally:
                evaluator.close()
        assert results[0].config.to_json() == results[1].config.to_json()
        assert history_rows(results[0]) == history_rows(results[1])


class TestWarmCache:
    def test_warm_rerun_zero_fresh_evaluations(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        cold = ParallelEvaluator.from_spec(SORT_SPEC, jobs=1, cache=path)
        cold_result = tune_sort(cold)
        cold.close()
        assert cold.evaluations > 0

        warm = ParallelEvaluator.from_spec(SORT_SPEC, jobs=1, cache=path)
        warm_result = tune_sort(warm)
        warm.close()
        assert warm.evaluations == 0
        assert warm_result.config.to_json() == cold_result.config.to_json()
        assert warm_result.best_time == cold_result.best_time

    def test_cache_ignored_across_machines(self, tmp_path):
        path = str(tmp_path / "cache.jsonl")
        xeon = ParallelEvaluator.from_spec(SORT_SPEC, jobs=1, cache=path)
        config = ChoiceConfig()
        config.set_choice(sort_app.SORT_SITE, Selector.static(0))
        xeon.time(config, 32)
        xeon.close()

        niagara_spec = EvaluatorSpec.make(
            "repro.apps.sort:make_evaluator", "niagara"
        )
        niagara = ParallelEvaluator.from_spec(
            niagara_spec, jobs=1, cache=path
        )
        niagara.time(config, 32)
        niagara.close()
        assert niagara.evaluations == 1  # the xeon8 record was not reused

    def test_disk_hits_counted(self, tmp_path):
        from repro.observe import TraceSink

        path = str(tmp_path / "cache.jsonl")
        config = ChoiceConfig()
        config.set_choice(sort_app.SORT_SITE, Selector.static(1))
        first = ParallelEvaluator.from_spec(SORT_SPEC, jobs=1, cache=path)
        first.time(config, 64)
        first.close()

        sink = TraceSink()
        second = ParallelEvaluator.from_spec(
            SORT_SPEC, jobs=1, cache=path, sink=sink
        )
        assert second.time(config, 64) == first.time(config, 64)
        second.close()
        assert sink.counter("tuner.cache.disk_hits") == 1
        assert second.evaluations == 0
