"""Tests for the task recorder and the work-stealing schedule simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import (
    MACHINES,
    Machine,
    ScheduleResult,
    TaskGraph,
    TaskRecorder,
    WorkStealingScheduler,
)
from repro.runtime.task import Task

FAST = Machine(
    name="test", cores=4, cycle_time=1.0, spawn_time=0.0, steal_time=0.0
)


def record_fanout(count: int, work: float) -> TaskGraph:
    rec = TaskRecorder()
    with rec.task(label="root"):
        for k in range(count):
            with rec.task(label=f"leaf{k}"):
                rec.charge(work)
    return rec.graph()


class TestRecorder:
    def test_simple_graph(self):
        graph = record_fanout(3, 10.0)
        assert len(graph) == 4
        assert graph.total_work() == 30.0
        root = graph.tasks[0]
        assert root.spawns == 3
        assert graph.children_of(0) == (1, 2, 3)

    def test_charge_outside_task_rejected(self):
        rec = TaskRecorder()
        with pytest.raises(RuntimeError):
            rec.charge(1.0)

    def test_negative_work_rejected(self):
        rec = TaskRecorder()
        with rec.task():
            with pytest.raises(ValueError):
                rec.charge(-1.0)

    def test_deps_recorded(self):
        rec = TaskRecorder()
        with rec.task() as root:
            with rec.task() as a:
                rec.charge(5)
            with rec.task(deps=[a]) as b:
                rec.charge(5)
        graph = rec.graph()
        assert graph.tasks[b].deps == (a,)

    def test_inline_folds_work_into_parent(self):
        rec = TaskRecorder()
        with rec.task() as root:
            with rec.task(inline=True):
                rec.charge(42)
        graph = rec.graph()
        assert len(graph) == 1
        assert graph.tasks[root].work == 42
        assert graph.tasks[root].spawns == 0

    def test_inline_at_top_level_promotes(self):
        rec = TaskRecorder()
        with rec.task(inline=True):
            rec.charge(7)
        assert len(rec.graph()) == 1

    def test_graph_with_open_scope_rejected(self):
        rec = TaskRecorder()
        ctx = rec.task()
        ctx.__enter__()
        with pytest.raises(RuntimeError):
            rec.graph()

    def test_forward_dep_rejected(self):
        graph_tasks = [Task(tid=0, deps=(1,)), Task(tid=1)]
        with pytest.raises(ValueError):
            TaskGraph(graph_tasks).validate()

    def test_critical_path_chain(self):
        rec = TaskRecorder()
        prev = None
        with rec.task():
            for _ in range(3):
                deps = [prev] if prev is not None else []
                with rec.task(deps=deps) as tid:
                    rec.charge(10)
                prev = tid
        assert rec.graph().critical_path() == 30.0


class TestScheduler:
    def test_empty_graph(self):
        result = WorkStealingScheduler(FAST).run(TaskGraph([]))
        assert result.makespan == 0.0
        assert result.speedup == 1.0

    def test_single_task(self):
        rec = TaskRecorder()
        with rec.task():
            rec.charge(100)
        result = WorkStealingScheduler(FAST).run(rec.graph())
        assert result.makespan == 100.0
        assert result.speedup == 1.0

    def test_perfect_fanout_scales(self):
        graph = record_fanout(8, 100.0)
        result = WorkStealingScheduler(FAST).run(graph, workers=4)
        # 800 work on 4 workers with zero overhead: makespan 200.
        assert result.makespan == 200.0
        assert result.speedup == pytest.approx(4.0)

    def test_chain_does_not_scale(self):
        rec = TaskRecorder()
        prev = None
        with rec.task():
            for _ in range(8):
                deps = [prev] if prev is not None else []
                with rec.task(deps=deps) as tid:
                    rec.charge(50)
                prev = tid
        result = WorkStealingScheduler(FAST).run(rec.graph(), workers=8)
        assert result.speedup == pytest.approx(1.0)

    def test_more_workers_never_slower_without_overhead(self):
        graph = record_fanout(16, 25.0)
        times = [
            WorkStealingScheduler(FAST).run(graph, workers=w).makespan
            for w in (1, 2, 4, 8)
        ]
        assert times == sorted(times, reverse=True)

    def test_spawn_overhead_penalizes_fine_grain(self):
        costly = Machine(
            name="costly", cores=4, cycle_time=1.0, spawn_time=50.0, steal_time=0.0
        )
        fine = record_fanout(64, 1.0)
        coarse = record_fanout(4, 16.0)
        sched = WorkStealingScheduler(costly)
        assert sched.run(coarse).makespan < sched.run(fine).makespan

    def test_sequential_time_excludes_overhead(self):
        graph = record_fanout(4, 10.0)
        result = WorkStealingScheduler(
            Machine("m", cores=2, cycle_time=2.0, spawn_time=99.0, steal_time=99.0)
        ).run(graph)
        assert result.sequential_time == 80.0

    def test_deterministic(self):
        graph = record_fanout(32, 7.0)
        sched = WorkStealingScheduler(MACHINES["xeon8"], seed=123)
        first = sched.run(graph)
        second = sched.run(graph)
        assert first == second

    def test_makespan_at_least_critical_path(self):
        rec = TaskRecorder()
        with rec.task():
            rec.charge(10)
            with rec.task() as a:
                rec.charge(100)
            with rec.task(deps=[a]):
                rec.charge(100)
            with rec.task():
                rec.charge(20)
        result = WorkStealingScheduler(FAST).run(rec.graph(), workers=4)
        assert result.makespan >= 210.0

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            WorkStealingScheduler(FAST).run(record_fanout(2, 1.0), workers=0)

    def test_dependencies_respected_across_workers(self):
        # b depends on a; even with steals, b must start after a finishes.
        rec = TaskRecorder()
        with rec.task():
            with rec.task() as a:
                rec.charge(100)
            with rec.task(deps=[a]):
                rec.charge(1)
        result = WorkStealingScheduler(FAST).run(rec.graph(), workers=4)
        assert result.makespan >= 101.0


class TestMachines:
    def test_profiles_exist(self):
        for name in ("xeon8", "xeon1", "mobile", "niagara"):
            assert name in MACHINES

    def test_with_cores(self):
        one_way = MACHINES["xeon8"].with_cores(1)
        assert one_way.cores == 1
        assert one_way.cycle_time == MACHINES["xeon8"].cycle_time

    def test_niagara_slower_single_thread(self):
        assert MACHINES["niagara"].cycle_time > MACHINES["xeon8"].cycle_time

    def test_niagara_cheaper_relative_overhead(self):
        relative = lambda m: m.spawn_time / m.cycle_time
        assert relative(MACHINES["niagara"]) < relative(MACHINES["xeon8"])


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.floats(min_value=1.0, max_value=100.0), min_size=1, max_size=30),
    st.integers(1, 8),
)
def test_work_conservation(works, workers):
    """Makespan is bounded below by work/P and above by sequential time
    plus scheduling overhead (zero-overhead machine => exactly bounded)."""
    rec = TaskRecorder()
    with rec.task():
        for w in works:
            with rec.task():
                rec.charge(w)
    graph = rec.graph()
    result = WorkStealingScheduler(FAST).run(graph, workers=workers)
    total = sum(works)
    assert result.makespan >= total / workers - 1e-9
    assert result.makespan <= total + 1e-9
