"""Tests for choice-grid internals, meta-rules (where clauses), the
lexicographic iteration-order solver, and order guards."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import ChoiceConfig, Selector, compile_program
from repro.compiler.depgraph import IterationOrder, _solve_iteration_order
from repro.language.errors import CompileError
from repro.symbolic import Affine


class TestMetaRules:
    """Non-affine where clauses become restricted rules packaged with an
    unrestricted fallback (paper §3.1's meta-rule construction)."""

    CHECKER = """
    transform Checker
    from A[n]
    to B[n]
    {
      to (B.cell(i) b) from (A.cell(i) a) where i % 2 == 0 { b = a * 2; }
      to (B.cell(i) b) from (A.cell(i) a) { b = a; }
    }
    """

    def test_options_include_meta_rule(self):
        t = compile_program(self.CHECKER).transform("Checker")
        (segment,) = t.grid.segments["B"]
        descriptions = {opt.describe(t.ir) for opt in segment.options}
        # Plain unrestricted rule, plus the meta-rule pairing the
        # restricted rule with it as fallback.
        assert "rule1" in descriptions
        assert "rule0|rule1" in descriptions

    def test_meta_rule_execution_applies_predicate_per_instance(self):
        program = compile_program(self.CHECKER)
        t = program.transform("Checker")
        (segment,) = t.grid.segments["B"]
        meta_index = next(
            idx
            for idx, opt in enumerate(segment.options)
            if opt.fallback is not None
        )
        config = ChoiceConfig()
        config.set_choice("Checker.B.0", Selector.static(meta_index))
        data = np.arange(1.0, 7.0)
        result = t.run([data], config)
        expected = [d * 2 if i % 2 == 0 else d for i, d in enumerate(data)]
        np.testing.assert_allclose(result.output("B"), expected)

    def test_unrestricted_choice_ignores_predicate(self):
        program = compile_program(self.CHECKER)
        t = program.transform("Checker")
        (segment,) = t.grid.segments["B"]
        plain_index = next(
            idx
            for idx, opt in enumerate(segment.options)
            if opt.fallback is None
        )
        config = ChoiceConfig()
        config.set_choice("Checker.B.0", Selector.static(plain_index))
        data = np.arange(1.0, 5.0)
        result = t.run([data], config)
        np.testing.assert_allclose(result.output("B"), data)

    def test_restricted_rule_without_fallback_uncoverable(self):
        with pytest.raises(CompileError, match="no rule covers"):
            compile_program(
                """
                transform Bad from A[n] to B[n]
                {
                  to (B.cell(i) b) from (A.cell(i) a) where i % 2 == 0 {
                    b = a;
                  }
                }
                """
            )


class TestIterationOrderSolver:
    def fake_transform(self):
        class _T:
            name = "T"

        return _T()

    def fake_segment(self):
        class _S:
            matrix = "M"

        return _S()

    def fake_rule(self):
        class _R:
            label = "rule"

        return _R()

    def solve(self, ndim, edges):
        return _solve_iteration_order(
            self.fake_transform(), self.fake_segment(), self.fake_rule(),
            ndim, edges,
        )

    def test_no_edges_fully_parallel(self):
        order = self.solve(2, [])
        assert order.is_parallel
        assert order.priority == (0, 1)

    def test_simple_backward_dependency(self):
        order = self.solve(1, [("<",)])
        assert order.signs == (1,)

    def test_forward_dependency_descends(self):
        order = self.solve(1, [(">",)])
        assert order.signs == (-1,)

    def test_stencil_pattern_resolved_by_outer_dim(self):
        # (t-1, i-1), (t-1, i), (t-1, i+1): dim 0 strict '<' resolves all;
        # dim 1 stays parallel.
        edges = [("<", "<"), ("<", "="), ("<", ">")]
        order = self.solve(2, edges)
        assert order.signs == (1, 0)

    def test_conflicting_same_dim_unschedulable(self):
        with pytest.raises(CompileError, match="deadlock"):
            self.solve(1, [("<",), (">",)])

    def test_reads_own_cell_unschedulable(self):
        with pytest.raises(CompileError, match="deadlock"):
            self.solve(2, [("=", "=")])

    def test_star_resolved_by_earlier_strict_dim(self):
        order = self.solve(2, [("<", "*")])
        assert order.signs[0] == 1

    def test_star_only_unschedulable(self):
        with pytest.raises(CompileError, match="deadlock"):
            self.solve(1, [("*",)])

    def test_needs_permutation(self):
        # Only dim 1 can resolve: ('=', '<') plus ('>', '<') needs dim 1
        # checked first with ascending order, descending dim 0 second...
        # actually ('>','<') resolves at dim0 descending under identity.
        # Force a permutation: ('=','<') and ('*','<'): dim0 cannot lead
        # for the second edge, so dim1 must come first.
        order = self.solve(2, [("=", "<"), ("*", "<")])
        assert order.signs[1] == 1
        assert order.priority[0] == 1

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from("<>=*"), st.sampled_from("<>=*")
            ),
            min_size=1,
            max_size=4,
        )
    )
    def test_solver_results_are_lexicographically_valid(self, edges):
        """Whenever the solver returns an order, every edge must be
        resolved by a strictly-earlier read in the nesting order."""
        try:
            order = self.solve(2, edges)
        except CompileError:
            return
        for dirs in edges:
            resolved = False
            for dim in order.priority:
                ch = dirs[dim]
                if ch == "=":
                    continue
                assert ch != "*", "star cannot resolve an edge"
                needed = 1 if ch == "<" else -1
                assert order.signs[dim] == needed
                resolved = True
                break
            assert resolved, "edge reads its own cell"


class TestOrderGuards:
    BOUNDED = """
    transform Windowed from A[n] to B[n]
    {
      to (B.cell(i) b) from (A.cell(i) a) where i >= 2, i < n - 2 {
        b = a * 10;
      }
      secondary to (B.cell(i) b) from (A.cell(i) a) { b = a; }
    }
    """

    def test_guards_recorded(self):
        t = compile_program(self.BOUNDED).transform("Windowed")
        assert t.grid.order_guards  # n - 2 vs 2 needs n >= 4

    def test_large_inputs_accepted(self):
        t = compile_program(self.BOUNDED).transform("Windowed")
        data = np.arange(8.0)
        result = t.run([data])
        expected = [d * 10 if 2 <= i < 6 else d for i, d in enumerate(data)]
        np.testing.assert_allclose(result.output("B"), expected)

    def test_too_small_inputs_rejected(self):
        t = compile_program(self.BOUNDED).transform("Windowed")
        with pytest.raises(Exception, match="too small|ordering"):
            t.run([np.ones(2)])


class TestSegmentPartition:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(4, 40))
    def test_segments_partition_matrix(self, n):
        """Concrete segments tile [0, n) without overlap for any size
        satisfying the guards."""
        t = compile_program(TestOrderGuards.BOUNDED).transform("Windowed")
        env = {"n": n}
        cells = []
        for segment in t.grid.segments["B"]:
            (lo, hi) = segment.box.concrete(env)[0]
            cells.extend(range(max(0, lo), min(n, hi)))
        assert sorted(cells) == list(range(n))
