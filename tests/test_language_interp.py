"""Tests for the rule-body interpreter."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.language.ast_nodes import (
    Assign,
    BinOp,
    Call,
    CellAccess,
    Num,
    Ternary,
    UnaryOp,
    Var,
)
from repro.language.interp import EvalError, Scope, evaluate, execute
from repro.language.parser import parse_expression, parse_rule_body
from repro.runtime import Matrix


def scope_with(**bindings):
    return Scope(dict(bindings))


def ev(text, **bindings):
    return evaluate(parse_expression(text), scope_with(**bindings))


class TestArithmetic:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1 + 2 * 3", 7),
            ("(1 + 2) * 3", 9),
            ("7 / 2", 3.5),
            ("7 % 2", 1.0),
            ("-3 + 1", -2),
            ("2 < 3", 1.0),
            ("2 >= 3", 0.0),
            ("1 == 1", 1.0),
            ("1 != 1", 0.0),
            ("1 && 0", 0.0),
            ("1 || 0", 1.0),
            ("!0", 1.0),
            ("0 ? 10 : 20", 20),
            ("5 > 4 ? 10 : 20", 10),
        ],
    )
    def test_expressions(self, text, expected):
        assert ev(text) == expected

    def test_division_by_zero(self):
        with pytest.raises(EvalError):
            ev("1 / 0")

    def test_short_circuit_and(self):
        # The right side would divide by zero; && must not evaluate it.
        assert ev("0 && (1 / 0)") == 0.0

    def test_short_circuit_or(self):
        assert ev("1 || (1 / 0)") == 1.0

    def test_unbound_name(self):
        with pytest.raises(EvalError):
            ev("mystery")

    def test_variables(self):
        assert ev("n * 2 + i", n=5, i=1) == 11


class TestViews:
    def test_scalar_view_autoderef(self):
        cell = Matrix.from_array([4.0]).cell(0)
        assert ev("a + 1", a=cell) == 5.0

    def test_cell_access(self):
        view = Matrix.from_array([1.0, 2.0, 3.0]).whole()
        assert ev("a.cell(1)", a=view).value == 2.0

    def test_cell_access_computed_index(self):
        view = Matrix.from_array([1.0, 2.0, 3.0]).whole()
        assert ev("a.cell(i - 1)", a=view, i=2).value == 2.0

    def test_cell_on_scalar_errors(self):
        with pytest.raises(EvalError):
            ev("x.cell(0)", x=1.0)

    def test_builtin_sum_dot(self):
        view = Matrix.from_array([1.0, 2.0, 3.0]).whole()
        assert ev("sum(a)", a=view) == 6.0
        assert ev("dot(a, a)", a=view) == 14.0

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("min(3, 1, 2)", 1.0),
            ("max(3, 1, 2)", 3.0),
            ("abs(0 - 4)", 4.0),
            ("sqrt(9)", 3.0),
            ("floor(3 / 2)", 1.0),
            ("ceil(3 / 2)", 2.0),
            ("pow(2, 10)", 1024.0),
        ],
    )
    def test_builtins(self, text, expected):
        assert ev(text) == expected

    def test_transform_call_requires_resolver(self):
        view = Matrix.from_array([1.0]).whole()
        with pytest.raises(EvalError):
            ev("Mystery(a)", a=view)

    def test_transform_call_resolver(self):
        view = Matrix.from_array([1.0, 2.0]).whole()

        def resolver(name, args):
            assert name == "Double"
            doubled = Matrix.from_array(args[0].to_numpy() * 2)
            return doubled.whole()

        scope = Scope({"a": view}, call_transform=resolver)
        result = evaluate(parse_expression("Double(a)"), scope)
        assert result.to_numpy().tolist() == [2.0, 4.0]


class TestExecute:
    def test_scalar_assignment(self):
        out = Matrix.scalar(0.0).whole()
        execute(parse_rule_body("b = 41 + 1;"), scope_with(b=out))
        assert out.value == 42.0

    def test_bulk_assignment(self):
        src = Matrix.from_array([1.0, 2.0]).whole()
        dst = Matrix.zeros((2,)).whole()
        execute(parse_rule_body("b = a;"), scope_with(a=src, b=dst))
        assert dst.to_numpy().tolist() == [1.0, 2.0]

    def test_cell_lvalue(self):
        dst = Matrix.zeros((3,)).whole()
        execute(parse_rule_body("b.cell(1) = 9;"), scope_with(b=dst))
        assert dst.to_numpy().tolist() == [0.0, 9.0, 0.0]

    @pytest.mark.parametrize(
        "op,expected", [("+=", 7.0), ("-=", 3.0), ("*=", 10.0), ("/=", 2.5)]
    )
    def test_compound_assignment(self, op, expected):
        out = Matrix.scalar(5.0).whole()
        execute(parse_rule_body(f"b {op} 2;"), scope_with(b=out))
        assert out.value == expected

    def test_compound_on_array(self):
        dst = Matrix.from_array([1.0, 2.0]).whole()
        execute(parse_rule_body("b += b;"), scope_with(b=dst))
        assert dst.to_numpy().tolist() == [2.0, 4.0]

    def test_assign_to_number_rejected(self):
        with pytest.raises(EvalError):
            execute(parse_rule_body("b = 1;"), scope_with(b=3.0))

    def test_sequence_of_statements(self):
        out = Matrix.scalar(0.0).whole()
        execute(
            parse_rule_body("b = 1; b += 2; b *= 4;"), scope_with(b=out)
        )
        assert out.value == 12.0

    def test_ops_counted(self):
        scope = scope_with(b=Matrix.scalar(0.0).whole())
        execute(parse_rule_body("b = 1 + 2 + 3;"), scope)
        assert scope.ops >= 2


@given(
    st.integers(-50, 50),
    st.integers(-50, 50),
    st.sampled_from(["+", "-", "*"]),
)
def test_property_binop_matches_python(a, b, op):
    result = ev(f"({a}) {op} ({b})")
    assert result == eval(f"({a}) {op} ({b})")


@given(st.lists(st.floats(-100, 100), min_size=1, max_size=20))
def test_property_sum_matches_numpy(values):
    view = Matrix.from_array(values).whole()
    assert ev("sum(a)", a=view) == pytest.approx(float(np.sum(values)))
