"""Tests for the LAPACK-stand-in substrate: banded Cholesky, Householder
tridiagonalization, and the three tridiagonal eigensolvers, all validated
against numpy's dense reference routines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import (
    BandedCholesky,
    band_from_dense,
    dense_from_band,
    eig_bisection,
    eig_divide_conquer,
    eig_qr,
    eigenvalues_ql,
    random_spd_band,
    sturm_count,
    tridiagonalize,
)

# The strictly diagonally dominant generator from repro.linalg: PD for
# every (order, bandwidth, seed), unlike the old fixed-shift generator.
random_spd_banded = random_spd_band


def random_tridiag(n, rng):
    return rng.standard_normal(n), rng.standard_normal(max(0, n - 1))


def check_eig(d, e, lam, Q, tol=1e-8):
    n = d.shape[0]
    T = np.diag(d)
    if n > 1:
        T += np.diag(e, -1) + np.diag(e, 1)
    expected = np.sort(np.linalg.eigvalsh(T))
    np.testing.assert_allclose(lam, expected, atol=tol, rtol=tol)
    residual = T @ Q - Q * lam[None, :]
    assert np.max(np.abs(residual)) < tol * max(1.0, np.max(np.abs(T)))
    ortho = Q.T @ Q - np.eye(n)
    assert np.max(np.abs(ortho)) < 1e-6


class TestBandStorage:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        dense = random_spd_banded(9, 3, rng)
        band = band_from_dense(dense, 3)
        np.testing.assert_allclose(dense_from_band(band), dense)


class TestBandedCholesky:
    @pytest.mark.parametrize("order,bandwidth", [(1, 0), (5, 1), (8, 3), (20, 4), (17, 6)])
    def test_blocked_solve(self, order, bandwidth):
        rng = np.random.default_rng(order * 7 + bandwidth)
        dense = random_spd_banded(order, bandwidth, rng)
        rhs = rng.standard_normal(order)
        chol = BandedCholesky(band_from_dense(dense, bandwidth))
        x = chol.solve(rhs)
        np.testing.assert_allclose(dense @ x, rhs, atol=1e-8)

    @pytest.mark.parametrize("order,bandwidth", [(6, 2), (12, 3)])
    def test_reference_matches_blocked(self, order, bandwidth):
        rng = np.random.default_rng(99)
        dense = random_spd_banded(order, bandwidth, rng)
        rhs = rng.standard_normal(order)
        band = band_from_dense(dense, bandwidth)
        x_ref = BandedCholesky(band, reference=True).solve(rhs)
        x_blk = BandedCholesky(band).solve(rhs)
        np.testing.assert_allclose(x_ref, x_blk, atol=1e-9)

    def test_multiple_rhs_reuse_factorization(self):
        rng = np.random.default_rng(5)
        dense = random_spd_banded(10, 2, rng)
        chol = BandedCholesky(band_from_dense(dense, 2))
        for _ in range(3):
            rhs = rng.standard_normal(10)
            np.testing.assert_allclose(dense @ chol.solve(rhs), rhs, atol=1e-8)

    def test_not_positive_definite(self):
        band = band_from_dense(-np.eye(4), 0)
        with pytest.raises(np.linalg.LinAlgError):
            BandedCholesky(band)

    def test_work_accounting(self):
        rng = np.random.default_rng(1)
        dense = random_spd_banded(16, 3, rng)
        chol = BandedCholesky(band_from_dense(dense, 3))
        base = chol.work
        chol.solve(np.ones(16))
        assert chol.work > base

    @settings(max_examples=25, deadline=None)
    @given(st.integers(1, 15), st.integers(0, 4), st.integers(0, 1000))
    def test_property_solve(self, order, bandwidth, seed):
        bandwidth = min(bandwidth, order - 1)
        rng = np.random.default_rng(seed)
        dense = random_spd_banded(order, bandwidth, rng)
        rhs = rng.standard_normal(order)
        x = BandedCholesky(band_from_dense(dense, bandwidth)).solve(rhs)
        np.testing.assert_allclose(dense @ x, rhs, atol=1e-7)

    def test_regression_order1_bandwidth0_seed856(self):
        """Regression: the old shift-based generator produced a matrix
        that was not positive definite at pivot 0 for this triple (a
        single N(0,1) diagonal draw below the fixed -2 shift)."""
        rng = np.random.default_rng(856)
        dense = random_spd_banded(1, 0, rng)
        assert dense[0, 0] > 0
        chol = BandedCholesky(band_from_dense(dense, 0))  # must not raise
        rhs = rng.standard_normal(1)
        np.testing.assert_allclose(dense @ chol.solve(rhs), rhs, atol=1e-9)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(1, 12), st.integers(0, 5), st.integers(0, 5000))
    def test_generator_always_positive_definite(self, order, bandwidth, seed):
        bandwidth = min(bandwidth, order - 1)
        dense = random_spd_band(order, bandwidth, np.random.default_rng(seed))
        assert np.linalg.eigvalsh(dense).min() > 0

    def test_generator_rejects_bad_bandwidth(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            random_spd_band(3, 3, rng)
        with pytest.raises(ValueError):
            random_spd_band(0, 0, rng)


class TestHouseholder:
    @pytest.mark.parametrize("n", [1, 2, 3, 8, 20])
    def test_reduction(self, n):
        rng = np.random.default_rng(n)
        A = rng.standard_normal((n, n))
        A = (A + A.T) / 2
        d, e, Q = tridiagonalize(A)
        T = np.diag(d)
        if n > 1:
            T += np.diag(e, -1) + np.diag(e, 1)
        np.testing.assert_allclose(Q @ T @ Q.T, A, atol=1e-10)
        np.testing.assert_allclose(Q @ Q.T, np.eye(n), atol=1e-10)

    def test_eigenvalues_preserved(self):
        rng = np.random.default_rng(3)
        A = rng.standard_normal((12, 12))
        A = (A + A.T) / 2
        d, e, _ = tridiagonalize(A)
        T = np.diag(d) + np.diag(e, -1) + np.diag(e, 1)
        np.testing.assert_allclose(
            np.linalg.eigvalsh(T), np.linalg.eigvalsh(A), atol=1e-9
        )

    def test_rejects_nonsymmetric(self):
        with pytest.raises(ValueError):
            tridiagonalize(np.array([[1.0, 2.0], [0.0, 1.0]]))


class TestSturmCount:
    def test_counts_bracket_spectrum(self):
        rng = np.random.default_rng(2)
        d, e = random_tridiag(15, rng)
        T = np.diag(d) + np.diag(e, -1) + np.diag(e, 1)
        lam = np.linalg.eigvalsh(T)
        assert sturm_count(d, e, lam[0] - 1.0) == 0
        assert sturm_count(d, e, lam[-1] + 1.0) == 15
        mid = (lam[6] + lam[7]) / 2
        assert sturm_count(d, e, mid) == 7

    def test_vectorized_matches_scalar(self):
        rng = np.random.default_rng(8)
        d, e = random_tridiag(10, rng)
        xs = np.linspace(-4, 4, 9)
        vec = sturm_count(d, e, xs)
        assert list(vec) == [sturm_count(d, e, float(x)) for x in xs]


class TestEigQR:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 16, 40])
    def test_random(self, n):
        rng = np.random.default_rng(n * 3 + 1)
        d, e = random_tridiag(n, rng)
        lam, Q = eig_qr(d, e)
        check_eig(d, e, lam, Q)

    def test_diagonal_input(self):
        d = np.array([3.0, 1.0, 2.0])
        e = np.zeros(2)
        lam, Q = eig_qr(d, e)
        np.testing.assert_allclose(lam, [1.0, 2.0, 3.0])

    def test_eigenvalues_only_variant(self):
        rng = np.random.default_rng(77)
        d, e = random_tridiag(25, rng)
        lam = eigenvalues_ql(d, e)
        T = np.diag(d) + np.diag(e, -1) + np.diag(e, 1)
        np.testing.assert_allclose(lam, np.linalg.eigvalsh(T), atol=1e-9)


class TestEigBisection:
    @pytest.mark.parametrize("n", [1, 2, 5, 16, 40])
    def test_random(self, n):
        rng = np.random.default_rng(n * 5 + 2)
        d, e = random_tridiag(n, rng)
        lam, Q = eig_bisection(d, e)
        check_eig(d, e, lam, Q, tol=1e-7)

    def test_repeated_eigenvalues(self):
        # Two decoupled identical 2x2 blocks -> doubled spectrum.
        d = np.array([1.0, 2.0, 1.0, 2.0])
        e = np.array([0.5, 0.0, 0.5])
        lam, Q = eig_bisection(d, e)
        check_eig(d, e, lam, Q, tol=1e-7)


class TestEigDivideConquer:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 9, 16, 33, 64])
    def test_random(self, n):
        rng = np.random.default_rng(n * 11 + 3)
        d, e = random_tridiag(n, rng)
        lam, Q = eig_divide_conquer(d, e)
        check_eig(d, e, lam, Q, tol=1e-7)

    def test_zero_coupling_splits_cleanly(self):
        d = np.array([1.0, 2.0, 5.0, 6.0])
        e = np.array([0.3, 0.0, 0.2])
        lam, Q = eig_divide_conquer(d, e, base_size=1)
        check_eig(d, e, lam, Q, tol=1e-9)

    def test_custom_recursion_hook(self):
        calls = []

        def hook(dd, ee):
            calls.append(len(dd))
            return eig_qr(dd, ee)

        rng = np.random.default_rng(4)
        d, e = random_tridiag(12, rng)
        lam, Q = eig_divide_conquer(d, e, recurse=hook)
        check_eig(d, e, lam, Q, tol=1e-7)
        assert calls == [6, 6]

    def test_deflation_with_tiny_coupling(self):
        d = np.linspace(1, 10, 10)
        e = np.full(9, 1e-14)
        lam, Q = eig_divide_conquer(d, e)
        check_eig(d, e, lam, Q, tol=1e-7)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 30), st.integers(0, 500))
    def test_property_matches_numpy(self, n, seed):
        rng = np.random.default_rng(seed)
        d, e = random_tridiag(n, rng)
        lam, Q = eig_divide_conquer(d, e)
        check_eig(d, e, lam, Q, tol=1e-6)


class TestCrossAlgorithmConsistency:
    """The three primitives must agree with each other (paper §3.5's
    consistency checking applied to the eigen benchmark)."""

    @pytest.mark.parametrize("n", [7, 24])
    def test_eigenvalues_agree(self, n):
        rng = np.random.default_rng(n)
        d, e = random_tridiag(n, rng)
        lam_qr, _ = eig_qr(d, e)
        lam_bi, _ = eig_bisection(d, e)
        lam_dc, _ = eig_divide_conquer(d, e)
        np.testing.assert_allclose(lam_qr, lam_bi, atol=1e-7)
        np.testing.assert_allclose(lam_qr, lam_dc, atol=1e-7)
