"""Tests for the static verifier suite (repro.analysis).

Three layers: golden-diagnostic tests pin exact code/severity/position
for seeded known-bad transforms, a hypothesis property test checks the
bounds checker's soundness guarantee (a transform whose executions are
in-bounds is never flagged), and a sweep asserts every bundled app and
example passes ``repro check --strict``.
"""

import dataclasses
import glob
import json
import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    AnalysisReport,
    CODE_TABLE,
    Diagnostic,
    analyze_transform,
    check_bounds,
    check_file,
    check_source,
    record_report,
    run_check,
)
from repro.compiler import ChoiceConfig, Selector, compile_program
from repro.compiler.config import site_key
from repro.compiler.ir import RegionIR
from repro.language.errors import CompileError, PetaBricksError
from repro.observe import TraceSink
from repro.symbolic import Box, Interval

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


# ---------------------------------------------------------------------------
# Golden diagnostics: known-bad sources -> exact code/severity/line
# ---------------------------------------------------------------------------

OVERLAP_WRITE = """transform Overlap
from A[n]
to B[n]
{
  to (B.region(i, i+2) b) from (A.cell(i) a) { b = a; }
}
"""

DUP_BIND = """transform Dup
from A[n]
to B[n]
{
  to (B.cell(i) x, B.cell(i) y) from (A.cell(i) a) { x = a; y = a; }
}
"""

META_FALLBACK_OVERLAP = """transform MetaOverlap
from A[n]
to B[n]
{
  to (B.cell(i) b) from (A.cell(i) a) where i % 2 == 0 { b = a; }
  to (B b) from (A a) { b = a; }
}
"""

DEADLOCK = """transform Cycle
from A[n]
to B[n]
through C[n]
{
  to (B b) from (C c) { b = c; }
  to (C c) from (B b) { c = b; }
}
"""

NO_ORDER = """transform NoOrder
from A[n]
to B[n]
{
  to (B.cell(i) b) from (A.cell(i) a, B.cell(i-1) l, B.cell(i+1) r) { b = a + l + r; }
  secondary to (B.cell(i) b) from (A.cell(i) a) { b = a; }
}
"""

UNBOUNDED = """transform Unb
from A[n]
to B[n]
{
  to (B.cell(i) b) from (A.region(0, 2*i - j) a) { b = sum(a); }
  to (B.cell(i) b) from (A.cell(i) a) { b = a; }
}
"""

UNSAT_WHERE = """transform Unsat
from A[n]
to B[n]
{
  to (B.cell(i) b) from (A.cell(i) a) where i % 2 == 2 { b = a; }
  to (B.cell(i) b) from (A.cell(i) a) { b = a; }
}
"""

UNUSED_DECLS = """transform Unused
from A[n], C[n]
to B[n]
tunable block(1, 64)
{
  to (B.cell(i) b) from (A.cell(i) a) { b = a; }
}
"""

SHADOWED = """transform Shadow
from A[n]
to B[n]
{
  to (B.cell(i) b) from (A.cell(i) a) { b = a; }
  secondary to (B.cell(i) b) from (A.cell(i) a) { b = 2 * a; }
}
"""

DEAD_RULE = """transform Dead
from A[n]
to B[n]
{
  to (B.cell(i) b) from (A.cell(i) a) where i < n / 2 { b = a; }
  to (B.cell(i) b) from (A.cell(i) a) where i >= n / 2 { b = 2 * a; }
  to (B.region(1, n-1) w) from (A a) { w = 0; }
}
"""

#: fixture -> required (code, severity, line) triples; the report may
#: additionally contain info-severity diagnostics only.
GOLDEN = {
    "overlap_write": (
        OVERLAP_WRITE,
        {("PB201", "error", 5), ("PB301", "error", 5)},
    ),
    "dup_bind": (DUP_BIND, {("PB202", "error", 5)}),
    "meta_fallback_overlap": (
        META_FALLBACK_OVERLAP,
        {("PB203", "error", 5), ("PB203", "error", 6), ("PB201", "error", 6)},
    ),
    "deadlock": (DEADLOCK, {("PB204", "error", 1)}),
    "no_order": (NO_ORDER, {("PB205", "error", 5)}),
    "unbounded": (UNBOUNDED, {("PB102", "error", 5)}),
    "unsat_where": (UNSAT_WHERE, {("PB401", "warning", 5)}),
    "unused_decls": (
        UNUSED_DECLS,
        {("PB402", "warning", 4), ("PB403", "warning", 2)},
    ),
    "shadowed": (SHADOWED, {("PB405", "warning", 6)}),
    "dead_rule": (DEAD_RULE, {("PB404", "warning", 7)}),
}


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_golden_diagnostics(name):
    source, expected = GOLDEN[name]
    report = check_source(source, path=name)
    got = {(d.code, d.severity, d.line) for d in report if d.severity != "info"}
    assert got == expected
    for diag in report:
        assert diag.code in CODE_TABLE
        assert diag.line > 0, f"{diag.code} lost its source position"
        assert diag.column > 0, f"{diag.code} lost its source column"


def test_golden_fixtures_span_eight_codes_across_all_families():
    codes = set()
    for source, expected in GOLDEN.values():
        codes.update(code for code, _, _ in expected)
    assert len(codes) >= 8
    families = {CODE_TABLE[code][1] for code in codes}
    assert families == {"bounds", "races", "coverage", "hygiene"}


def test_witness_on_every_error():
    """Witness-based errors carry a concrete size/instance assignment."""
    report = check_source(OVERLAP_WRITE)
    witnessed = [d for d in report.errors if d.code in ("PB201", "PB301")]
    assert witnessed
    for diag in witnessed:
        assert "n=" in diag.witness


# ---------------------------------------------------------------------------
# PB101: out-of-bounds reads the symbolic layer failed to exclude
# ---------------------------------------------------------------------------


def _compiled_with_shifted_read():
    """A correct transform whose from-region is then widened behind the
    symbolic layer's back — modeling an inference bug, the exact class
    of defect the witness checker exists to catch."""
    program = compile_program(
        "transform Shift\nfrom A[n]\nto B[n]\n"
        "{\n  to (B.cell(i) b) from (A.cell(i) a) { b = a; }\n}\n",
        analyze=False,
    )
    compiled = program.transforms["Shift"]
    rule = compiled.ir.rules[0]
    region = rule.from_regions[0]
    shifted = Box(
        [Interval(iv.lo + 1, iv.hi + 1) for iv in region.box.intervals]
    )
    rule.from_regions = (dataclasses.replace(region, box=shifted),)
    return compiled


def test_bounds_checker_reports_oob_read_with_witness():
    compiled = _compiled_with_shifted_read()
    diagnostics = check_bounds(compiled)
    oob = [d for d in diagnostics if d.code == "PB101"]
    assert len(oob) == 1
    diag = oob[0]
    assert diag.severity == "error"
    assert diag.rule == "rule0"
    assert "reads" in diag.message
    assert "n=" in diag.witness and "i=" in diag.witness


def test_bounds_witness_names_a_real_crash():
    """The PB101 witness must be a size at which execution faults."""
    compiled = _compiled_with_shifted_read()
    diag = [d for d in check_bounds(compiled) if d.code == "PB101"][0]
    env = dict(
        part.split("=") for part in diag.witness.split(", ")
    )
    n = int(env["n"])
    with pytest.raises((IndexError, PetaBricksError)):
        compiled.run([np.arange(float(n))])


# ---------------------------------------------------------------------------
# Regression: exact interval conversion for strided/fractional bounds
# ---------------------------------------------------------------------------

STRIDE = """transform Stride
from A[n]
to B[n]
{
  to (B.cell(i) b) from (A.cell(2 * i) a) where i < (n + 1) / 2 { b = a; }
  secondary to (B.cell(i) b) from (A.cell(i) a) { b = a; }
}
"""


def test_strided_read_bounds_are_exact():
    """A from-coordinate with stride 2 previously admitted one instance
    past the matrix edge at even sizes (the +1 interval shift rounded
    (n-1)/2 up); n=4 and n=6 crashed with IndexError.  The bounds are
    now shifted by the exact 1/lcm step, the program both checks clean
    and runs at every size."""
    report = check_source(STRIDE)
    assert not report.errors
    program = compile_program(STRIDE)
    transform = program.transforms["Stride"]
    for n in range(1, 9):
        # pre-fix this raised IndexError (A[n] read) at n = 4 and 6
        result = transform.run([np.arange(float(n))])
        out = result.outputs["B"].data
        for i, value in enumerate(out):
            assert value in (float(i), float(2 * i))
            if value == float(2 * i) and i:
                assert 2 * i < n, "strided read went past the matrix edge"


# ---------------------------------------------------------------------------
# Soundness property: in-bounds executions are never flagged
# ---------------------------------------------------------------------------


def _window_source(lo: int, hi: int) -> str:
    return (
        "transform Window\n"
        "from A[n]\n"
        "to B[n]\n"
        "{\n"
        f"  to (B.cell(i) b) from (A.region(i + {lo}, i + {hi}) a)"
        " { b = sum(a); }\n"
        "  to (B.cell(i) b) from (A.cell(i) a) { b = a; }\n"
        "}\n"
    )


@settings(max_examples=30, deadline=None)
@given(lo=st.integers(-2, 2), width=st.integers(1, 3))
def test_bounds_checker_soundness(lo, width):
    """If every execution (all sizes 1..6, every choice option) stays
    in-bounds, the bounds checker must not emit PB101."""
    source = _window_source(lo, lo + width)
    try:
        program = compile_program(source, analyze=False)
    except PetaBricksError:
        return  # rejected by the pipeline: nothing to check
    compiled = program.transforms["Window"]
    flagged = [
        d for d in check_bounds(compiled) if d.code == "PB101"
    ]
    crashed = False
    for n in range(1, 7):
        for _, segment in compiled.choice_sites():
            for index in range(len(segment.options)):
                config = ChoiceConfig()
                config.set_choice(
                    site_key("Window", segment.matrix, segment.index),
                    Selector.static(index),
                )
                try:
                    compiled.run([np.arange(float(n))], config)
                except (IndexError, PetaBricksError):
                    crashed = True
    if not crashed:
        assert not flagged, [d.format() for d in flagged]


# ---------------------------------------------------------------------------
# Sweep: every bundled app and example checks clean
# ---------------------------------------------------------------------------

BUNDLED = sorted(
    glob.glob(os.path.join(REPO_ROOT, "src", "repro", "apps", "*.py"))
    + glob.glob(os.path.join(REPO_ROOT, "examples", "*.py"))
)
BUNDLED = [p for p in BUNDLED if os.path.basename(p) != "__init__.py"]


@pytest.mark.parametrize("path", BUNDLED, ids=os.path.basename)
def test_bundled_programs_check_clean(path):
    report = check_file(path)
    assert report.clean, "\n".join(d.format() for d in report)


# ---------------------------------------------------------------------------
# Pipeline hook: compile_program(analyze=True) raises tagged CompileErrors
# ---------------------------------------------------------------------------


def test_compile_hook_raises_on_race():
    with pytest.raises(CompileError) as err:
        compile_program(OVERLAP_WRITE)
    assert err.value.code in ("PB201", "PB301")
    assert err.value.line == 5
    assert err.value.hint
    # the unformatted message stays accessible next to the formatted str
    assert err.value.message in str(err.value)
    assert str(err.value).startswith("line 5:")


def test_compile_hook_opt_out():
    program = compile_program(OVERLAP_WRITE, analyze=False)
    assert "Overlap" in program.transforms


def test_compile_hook_ignores_warnings():
    # hygiene findings are warnings: compilation must still succeed
    program = compile_program(UNUSED_DECLS)
    assert "Unused" in program.transforms


# ---------------------------------------------------------------------------
# Report plumbing: CLI driver, JSON, exit codes, observe counters
# ---------------------------------------------------------------------------


def test_run_check_text_and_exit_codes(tmp_path, capsys):
    bad = tmp_path / "bad.pbcc"
    bad.write_text(OVERLAP_WRITE)
    warn = tmp_path / "warn.pbcc"
    warn.write_text(UNUSED_DECLS)
    clean = tmp_path / "clean.pbcc"
    clean.write_text(_window_source(0, 1))

    assert run_check([str(bad)]) == 1
    assert run_check([str(warn)]) == 0
    assert run_check([str(warn)], strict=True) == 1
    assert run_check([str(clean)], strict=True) == 0
    out = capsys.readouterr().out
    assert "error[PB" in out
    assert "repro check:" in out


def test_run_check_json(tmp_path, capsys):
    bad = tmp_path / "bad.pbcc"
    bad.write_text(DUP_BIND)
    code = run_check([str(bad)], fmt="json")
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["errors"] == 1
    assert payload["counts"].get("PB202") == 1
    (diag,) = [
        d for d in payload["diagnostics"] if d["severity"] == "error"
    ]
    assert diag["code"] == "PB202"
    assert diag["line"] == 5
    assert diag["path"] == str(bad)


def test_run_check_dedupes_repeated_paths(tmp_path, capsys):
    """Passing one file twice reports each finding exactly once."""
    path = tmp_path / "prog.pbcc"
    path.write_text(UNUSED_DECLS)
    run_check([str(path)], fmt="json")
    once = capsys.readouterr().out
    run_check([str(path), str(path)], fmt="json")
    twice = capsys.readouterr().out
    assert json.loads(once)["diagnostics"], "fixture must emit findings"
    assert once == twice


def test_run_check_order_is_argument_order_independent(tmp_path, capsys):
    """Multi-file JSON reports are stably sorted, not argument-ordered."""
    first = tmp_path / "a.pbcc"
    first.write_text(UNUSED_DECLS)
    second = tmp_path / "b.pbcc"
    second.write_text(OVERLAP_WRITE)
    run_check([str(first), str(second)], fmt="json")
    forward = capsys.readouterr().out
    run_check([str(second), str(first)], fmt="json")
    backward = capsys.readouterr().out
    assert forward == backward
    paths = [d["path"] for d in json.loads(forward)["diagnostics"]]
    assert paths == sorted(paths)


def test_cli_check_subcommand(tmp_path, capsys):
    from repro.cli import main

    bad = tmp_path / "bad.pbcc"
    bad.write_text(OVERLAP_WRITE)
    assert main(["check", str(bad)]) == 1
    assert main(["check", "--format", "json", str(bad)]) == 1
    app = os.path.join(REPO_ROOT, "src", "repro", "apps", "rollingsum.py")
    assert main(["check", "--strict", app]) == 0


def test_record_report_counters():
    sink = TraceSink()
    report = check_source(OVERLAP_WRITE)
    record_report(report, sink)
    counts = report.counts_by_code()
    for code, count in counts.items():
        assert sink.counter(f"analysis.diagnostics.{code}") == count
    assert sink.counter("analysis.errors") == len(report.errors)


def test_parse_error_becomes_diagnostic():
    report = check_source("transform Broken from A[n]")
    assert len(report) == 1
    (diag,) = report
    assert diag.is_error
    assert diag.code == "PB001"


def test_code_table_severities_are_valid():
    for code, (severity, family, summary) in CODE_TABLE.items():
        Diagnostic(code=code, severity=severity, message=summary)
        assert family in (
            "general", "bounds", "races", "coverage", "hygiene",
            "leafpaths", "depend",
        )


def test_code_table_covers_every_emitted_code():
    """Every PB-code literal a pass can emit has a CODE_TABLE row."""
    import re

    pattern = re.compile(r"[\"'](PB\d{3})[\"']")
    emitted = set()
    src_root = os.path.join(REPO_ROOT, "src", "repro")
    for dirpath, _dirnames, filenames in os.walk(src_root):
        for filename in filenames:
            if not filename.endswith(".py") or filename == "diagnostics.py":
                continue
            with open(
                os.path.join(dirpath, filename), encoding="utf-8"
            ) as handle:
                emitted |= set(pattern.findall(handle.read()))
    unknown = emitted - set(CODE_TABLE)
    assert not unknown, f"codes emitted without a CODE_TABLE row: {unknown}"


def test_design_doc_table_matches_code_table():
    """DESIGN.md's diagnostic-code table lists exactly the registry."""
    import re

    design = os.path.join(REPO_ROOT, "DESIGN.md")
    with open(design, encoding="utf-8") as handle:
        text = handle.read()
    documented = set(re.findall(r"^\| (PB\d{3}) \|", text, re.MULTILINE))
    assert documented == set(CODE_TABLE)


def test_report_ordering_and_summary():
    report = AnalysisReport()
    report.add(Diagnostic(code="PB402", severity="warning", message="w", line=9))
    report.add(Diagnostic(code="PB101", severity="error", message="e", line=2))
    assert [d.code for d in report] == ["PB101", "PB402"]
    assert report.exit_code() == 1
    assert "1 error(s), 1 warning(s)" in report.summary_line()


# ---------------------------------------------------------------------------
# PB503: per-transform batch-axis (stacking) eligibility
# ---------------------------------------------------------------------------

STACK_FULL = """transform Scale
from A[n, m]
to B[n, m]
{
  to (B.cell(x, y) b) from (A.cell(x, y) a) { b = a * 2.0; }
}
"""

STACK_PARTIAL = """transform Clamp
from A[n]
to B[n]
{
  to (B.cell(i) b) from (A.cell(i) a) where i % 2 == 0 { b = a; }
  to (B.cell(i) b) from (A.cell(i) a) { b = 2 * a; }
}
"""

STACK_NONE = """transform RollingSum
from A[n]
to B[n]
{
  to (B.cell(i) b) from (A.region(0, i+1) in) { b = sum(in); }
  to (B.cell(i) b) from (A.cell(i) a, B.cell(i-1) leftSum) { b = a + leftSum; }
}
"""

#: fixture -> the exact PB503 message the report must contain.
PB503_GOLDEN = {
    "stack_full": (
        STACK_FULL,
        "batch-stackable under every configuration",
    ),
    "stack_partial": (
        STACK_PARTIAL,
        "batch-stackable under some configurations "
        "(B.0: option has a where-clause fallback)",
    ),
    "stack_none": (
        STACK_NONE,
        "not batch-stackable: B.0: binding 'in' is a region view "
        "(only cell reads/writes vectorize)",
    ),
}


@pytest.mark.parametrize("name", sorted(PB503_GOLDEN))
def test_pb503_golden(name):
    source, message = PB503_GOLDEN[name]
    report = check_source(source, path=name)
    found = [d for d in report if d.code == "PB503"]
    assert len(found) == 1, "exactly one PB503 per transform"
    (diag,) = found
    assert diag.message == message
    assert diag.severity == "info"
    assert diag.line == 1 and diag.column == 1
    assert diag.hint


def test_pb503_matches_engine_behavior():
    """The diagnostic verdict and the batch engine's actual execution
    path can never disagree: full -> stacked, none -> serial fallback."""
    from repro.batch import BatchEngine
    from repro.batch.stacked import batch_eligibility

    rng = np.random.default_rng(7)
    for source, expect_stacked in ((STACK_FULL, True), (STACK_NONE, False)):
        program = compile_program(source)
        transform = next(iter(program.transforms.values()))
        status, _ = batch_eligibility(transform)
        assert (status == "full") is expect_stacked
        engine = BatchEngine()
        shape = tuple(
            2 for _ in transform.ir.inputs[0].dims
        )
        engine.submit(transform, [rng.uniform(-1, 1, shape)])
        (result,) = engine.gather()
        assert result.ok
        assert result.stacked is expect_stacked
