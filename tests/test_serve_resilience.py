"""Tests for the serving-layer resilience stack.

Covers admission control (weighted sheds, bounded queueing, structured
429/503 + Retry-After), request deadline budgets on /run and /batch
(including the batch engine's bucket-boundary checks), graceful drain
semantics (in-flight work completes byte-identically while new work
sheds), liveness vs readiness probes, the event-based job queue with
idempotent enqueue, client-side bounded retries against injected
transport faults, and the dropped-connection tolerance of the HTTP
handler.
"""

import json
import threading
import time

import pytest

from repro.batch.engine import BatchEngine
from repro.faults import FaultInjector
from repro.serve import (
    AdmissionController,
    Deadline,
    DeadlineExceeded,
    JobQueue,
    QueueDraining,
    ResilienceConfig,
    RetryPolicy,
    ServeApp,
    ServeClient,
    ServeClientError,
    ServeDaemon,
    ServeError,
    ShedError,
)
from repro.serve.daemon import _Handler
from repro.observe.trace import ThreadSafeSink

SCALE = """
transform Scale
from A[n, m]
to B[n, m]
{
  to (B.cell(x, y) b) from (A.cell(x, y) a) { b = a * 2.0 + 1.0; }
}
"""


def _app(**kwargs):
    return ServeApp(**kwargs)


# ---------------------------------------------------------------------------
# admission control


class TestAdmission:
    def test_capacity_shed_is_structured(self):
        config = ResilienceConfig(
            max_concurrency=1, max_queue=0, retry_after_s=0.25
        )
        sink = ThreadSafeSink()
        admission = AdmissionController(config, sink=sink)
        with admission.admit("run"):
            with pytest.raises(ShedError) as excinfo:
                with admission.admit("run"):
                    pass
        shed = excinfo.value
        assert shed.status == 429
        assert shed.code == "capacity"
        assert shed.retry_after == 0.25
        assert sink.counters["serve.shed.capacity"] == 1

    def test_weighted_cost_clamps_to_limit(self):
        config = ResilienceConfig(max_concurrency=4, max_queue=0)
        admission = AdmissionController(config)
        # A maximal batch fills the limiter rather than being unservable.
        with admission.admit("batch", cost=10_000):
            assert admission.snapshot()["inflight"] == 4
            with pytest.raises(ShedError):
                with admission.admit("run"):
                    pass

    def test_queued_request_admits_when_slot_frees(self):
        config = ResilienceConfig(
            max_concurrency=1, max_queue=4, queue_timeout_s=5.0
        )
        admission = AdmissionController(config)
        admitted = threading.Event()
        release = threading.Event()

        def holder():
            with admission.admit("run"):
                admitted.set()
                release.wait(timeout=5.0)

        thread = threading.Thread(target=holder)
        thread.start()
        assert admitted.wait(timeout=2.0)
        waited = []

        def waiter():
            with admission.admit("run"):
                waited.append(True)

        wthread = threading.Thread(target=waiter)
        wthread.start()
        time.sleep(0.05)  # the waiter parks in the accept queue
        assert admission.snapshot()["queued"] == 1
        release.set()
        wthread.join(timeout=5.0)
        thread.join(timeout=5.0)
        assert waited == [True]
        assert admission.snapshot() == {
            "inflight": 0,
            "queued": 0,
            "max_concurrency": 1,
            "max_queue": 4,
            "draining": False,
        }

    def test_queue_timeout_sheds(self):
        config = ResilienceConfig(
            max_concurrency=1, max_queue=4, queue_timeout_s=0.05
        )
        sink = ThreadSafeSink()
        admission = AdmissionController(config, sink=sink)
        with admission.admit("run"):
            with pytest.raises(ShedError) as excinfo:
                with admission.admit("run"):
                    pass
        assert excinfo.value.code == "queue_timeout"
        assert excinfo.value.status == 429
        assert sink.counters["serve.shed.queue_timeout"] == 1

    def test_draining_sheds_everything_new(self):
        config = ResilienceConfig(drain_timeout_s=1.5)
        admission = AdmissionController(config)
        assert admission.begin_drain() is True
        assert admission.begin_drain() is False  # idempotent
        with pytest.raises(ShedError) as excinfo:
            with admission.admit("run"):
                pass
        assert excinfo.value.status == 503
        assert excinfo.value.code == "draining"
        assert excinfo.value.retry_after == 1.5

    def test_ready_verdicts(self):
        config = ResilienceConfig(max_concurrency=1, max_queue=2)
        admission = AdmissionController(config)
        assert admission.ready() == {"ready": True, "reason": "ok"}
        admission.begin_drain()
        assert admission.ready() == {"ready": False, "reason": "draining"}

    def test_expired_deadline_while_queued_sheds_504(self):
        config = ResilienceConfig(
            max_concurrency=1, max_queue=4, queue_timeout_s=5.0
        )
        sink = ThreadSafeSink()
        admission = AdmissionController(config, sink=sink)
        with admission.admit("run"):
            deadline = Deadline(10.0)  # 10ms, expires while queued
            with pytest.raises(ServeError) as excinfo:
                with admission.admit("run", deadline=deadline):
                    pass
        assert excinfo.value.status == 504
        assert excinfo.value.code == "deadline_exceeded"
        assert sink.counters["serve.deadline.expired"] == 1


# ---------------------------------------------------------------------------
# deadlines


class TestDeadline:
    def test_from_payload_validation(self):
        assert Deadline.from_payload({}) is None
        assert Deadline.from_payload({}, default_ms=50.0).budget_ms == 50.0
        assert Deadline.from_payload({"deadline_ms": 25}).budget_ms == 25.0
        for bad in ("soon", -1, 0, [1]):
            with pytest.raises(ServeError) as excinfo:
                Deadline.from_payload({"deadline_ms": bad})
            assert excinfo.value.status == 400

    def test_error_text_is_wall_clock_free(self):
        deadline = Deadline(75.0)
        time.sleep(0.002)
        # Byte parity: the message depends only on the budget, never on
        # how late the request actually was.
        assert str(deadline.error()) == "75ms request budget exhausted"
        assert isinstance(deadline.error(), DeadlineExceeded)

    def test_batch_engine_expires_at_bucket_boundaries(self):
        from repro.compiler import compile_program

        program = compile_program(SCALE)
        transform = program.transform("Scale")

        class Expired:
            def expired(self):
                return True

            def error(self):
                return DeadlineExceeded("1ms request budget exhausted")

        sink = ThreadSafeSink()
        engine = BatchEngine(sink=sink)
        for value in (1.0, 2.0, 3.0):
            engine.submit(transform, {"A": [[value]]})
        results = engine.gather(deadline=Expired())
        assert len(results) == 3
        for result in results:
            assert result.outputs is None
            assert isinstance(result.error, DeadlineExceeded)
        assert sink.counters["batch.deadline_skips"] == 3

    def test_run_endpoint_maps_expired_budget_to_504(self):
        app = _app(resilience=ResilienceConfig(default_deadline_ms=0.001))
        try:
            phash = app.compile({"source": SCALE})["program"]
            with pytest.raises(ServeError) as excinfo:
                app.run(
                    {
                        "program": phash,
                        "transform": "Scale",
                        "inputs": {"A": [[1.0]]},
                    }
                )
            assert excinfo.value.status == 504
            assert excinfo.value.code == "deadline_exceeded"
            assert app.sink.counters["serve.deadline.expired"] == 1
        finally:
            app.close()

    def test_batch_endpoint_emits_structured_deadline_records(self):
        app = _app()
        try:
            phash = app.compile({"source": SCALE})["program"]
            lines = [
                json.dumps(
                    {"transform": "Scale", "inputs": {"A": [[float(i)]]}}
                )
                for i in range(3)
            ]
            response = app.batch(
                {"program": phash, "lines": lines, "deadline_ms": 0.001}
            )
            assert response["failed"] == 3
            for record in response["results"]:
                assert record["ok"] is False
                assert (
                    record["error"]
                    == "DeadlineExceeded: 0.001ms request budget exhausted"
                )
            assert app.sink.counters["serve.deadline.batch_requests"] == 3
            assert app.sink.counters["batch.deadline_skips"] == 3
        finally:
            app.close()


# ---------------------------------------------------------------------------
# job queue


class TestJobQueue:
    def test_event_based_wait(self):
        started = threading.Event()

        def runner(job):
            started.wait(timeout=5.0)
            return {"ran": job.payload["n"]}

        queue = JobQueue(runner, workers=1)
        try:
            job_id, deduped = queue.submit("tune", {"n": 7})
            assert deduped is False
            started.set()
            snapshot = queue.wait(job_id, timeout=5.0)
            assert snapshot["state"] == "done"
            assert snapshot["result"] == {"ran": 7}
        finally:
            queue.close()

    def test_idempotency_key_dedupes(self):
        queue = JobQueue(lambda job: {}, workers=1)
        try:
            first, deduped1 = queue.submit("tune", {}, idempotency_key="k")
            second, deduped2 = queue.submit("tune", {}, idempotency_key="k")
            assert first == second
            assert (deduped1, deduped2) == (False, True)
        finally:
            queue.close()

    def test_drain_cancels_queued_keeps_running(self):
        gate = threading.Event()
        running = threading.Event()

        def runner(job):
            running.set()
            gate.wait(timeout=5.0)
            return {"ok": True}

        queue = JobQueue(runner, workers=1)
        try:
            active, _ = queue.submit("tune", {})
            assert running.wait(timeout=5.0)
            queued, _ = queue.submit("tune", {})
            assert queue.drain() == 1
            with pytest.raises(QueueDraining):
                queue.submit("tune", {})
            assert queue.get(queued)["state"] == "cancelled"
            gate.set()
            assert queue.wait(active, timeout=5.0)["state"] == "done"
            assert queue.wait_idle(timeout=5.0)
        finally:
            queue.close()


# ---------------------------------------------------------------------------
# retry policy


class TestRetryPolicy:
    def test_deterministic_and_bounded(self):
        policy = RetryPolicy(retries=3, backoff_s=0.05, max_backoff_s=0.4)
        delays = [policy.delay("/run", attempt) for attempt in range(4)]
        assert delays == [policy.delay("/run", a) for a in range(4)]
        assert all(0.0 < d <= 0.4 * 1.25 for d in delays)
        # Exponential shape: later attempts never shrink below the
        # un-jittered earlier base.
        assert delays[2] > delays[0]

    def test_honors_retry_after(self):
        policy = RetryPolicy(backoff_s=0.01, max_backoff_s=0.5)
        assert policy.delay("/run", 0, retry_after=0.3) >= 0.3
        # ...but never waits past the cap on an absurd server ask.
        assert policy.delay("/run", 0, retry_after=60.0) <= 0.5 * 1.25


# ---------------------------------------------------------------------------
# graceful drain over HTTP


class TestDrain:
    def test_shutdown_finishes_inflight_sheds_new(self):
        """The drain acceptance check: a slow in-flight /batch admitted
        before /shutdown completes byte-identically to an unfaulted
        run, while a request arriving during the drain sheds 503."""
        lines = [
            json.dumps({"transform": "Scale", "inputs": {"A": [[7.0]]}})
        ]

        # Baseline bytes from a fault-free daemon.
        baseline_app = _app()
        baseline = ServeDaemon(baseline_app, port=0).start_background()
        try:
            client = ServeClient(port=baseline.port)
            phash = client.compile(SCALE)["program"]
            expected = json.dumps(
                client.batch(phash, lines), sort_keys=True
            )
        finally:
            baseline.stop()

        # The injected daemon: only the rid-carrying request is slowed.
        injector = FaultInjector.parse("slow-handler:1,hang=0.4")
        app = _app(
            injector=injector,
            resilience=ResilienceConfig(drain_timeout_s=5.0),
        )
        daemon = ServeDaemon(app, port=0).start_background()
        client = ServeClient(
            port=daemon.port, retry=RetryPolicy(retries=0)
        )
        assert client.compile(SCALE)["program"] == phash

        outcome = {}

        def slow_batch():
            outcome["response"] = client.batch(phash, lines, rid="slow")

        worker = threading.Thread(target=slow_batch)
        worker.start()
        time.sleep(0.1)  # the slow request is admitted and sleeping
        assert client.shutdown()["state"] == "draining"
        with pytest.raises(ServeClientError) as excinfo:
            client.run(phash, "Scale", {"A": [[1.0]]})
        assert excinfo.value.status == 503
        assert excinfo.value.reason == "draining"
        worker.join(timeout=10.0)
        assert not worker.is_alive()
        assert (
            json.dumps(outcome["response"], sort_keys=True) == expected
        )
        daemon._thread.join(timeout=10.0)
        assert not daemon._thread.is_alive()
        assert app.sink.counters["serve.drain.begun"] == 1
        assert app.sink.counters["serve.drain.completed"] == 1
        assert app.sink.counters["serve.shed.draining"] >= 1

    def test_ready_flips_on_drain_health_stays_alive(self):
        app = _app()
        daemon = ServeDaemon(app, port=0).start_background()
        try:
            client = ServeClient(port=daemon.port)
            assert client.ready()["ready"] is True
            assert client.health()["ok"] is True
            app.begin_drain()
            verdict = client.ready()
            assert verdict["ready"] is False
            assert verdict["reason"] == "draining"
            # Liveness is not readiness: /health still answers 200.
            health = client.health()
            assert health["ok"] is True
            assert health["draining"] is True
        finally:
            daemon.stop()


# ---------------------------------------------------------------------------
# client retries vs injected transport faults


class TestClientRetries:
    def _daemon(self, inject):
        app = _app(injector=FaultInjector.parse(inject))
        return app, ServeDaemon(app, port=0).start_background()

    def test_conn_drop_recovers_on_retry(self):
        app, daemon = self._daemon("conn-drop:1x1")
        try:
            sink = ThreadSafeSink()
            client = ServeClient(
                port=daemon.port,
                retry=RetryPolicy(retries=2, backoff_s=0.01),
                sink=sink,
            )
            phash = client.compile(SCALE)["program"]
            response = client.run(
                phash, "Scale", {"A": [[2.0]]}, rid="r1"
            )
            assert response["outputs"]["B"] == [[5.0]]
            assert sink.counters["serve.retry.attempts"] >= 1
            assert sink.counters["serve.retry.recoveries"] == 1
            assert app.sink.counters["serve.conn_dropped"] >= 1
        finally:
            daemon.stop()

    def test_conn_drop_without_retries_raises(self):
        app, daemon = self._daemon("conn-drop:1x1")
        try:
            client = ServeClient(
                port=daemon.port, retry=RetryPolicy(retries=0)
            )
            phash = client.compile(SCALE)["program"]
            with pytest.raises(Exception):
                client.run(phash, "Scale", {"A": [[2.0]]}, rid="r1")
        finally:
            daemon.stop()

    def test_shed_storm_retry_lands_identical_bytes(self):
        app, daemon = self._daemon("shed-storm:1x1")
        try:
            client = ServeClient(
                port=daemon.port,
                retry=RetryPolicy(retries=2, backoff_s=0.01),
            )
            phash = client.compile(SCALE)["program"]
            plain = client.run(phash, "Scale", {"A": [[3.0]]})
            stormed = client.run(phash, "Scale", {"A": [[3.0]]}, rid="s1")
            assert json.dumps(stormed, sort_keys=True) == json.dumps(
                plain, sort_keys=True
            )
            assert app.sink.counters["serve.shed.injected"] == 1
        finally:
            daemon.stop()

    def test_shed_carries_reason_and_retry_after(self):
        app = _app(
            resilience=ResilienceConfig(
                max_concurrency=1, max_queue=0, retry_after_s=0.5
            )
        )
        daemon = ServeDaemon(app, port=0).start_background()
        try:
            client = ServeClient(
                port=daemon.port, retry=RetryPolicy(retries=0)
            )
            phash = client.compile(SCALE)["program"]
            with app.admission.admit("test-holder"):
                with pytest.raises(ServeClientError) as excinfo:
                    client.run(phash, "Scale", {"A": [[1.0]]})
            shed = excinfo.value
            assert shed.status == 429
            assert shed.reason == "capacity"
            assert shed.retry_after == 0.5
        finally:
            daemon.stop()

    def test_tune_retry_dedupes_via_idempotency_key(self):
        app = _app()
        try:
            payload = {
                "program": app.compile({"source": SCALE})["program"],
                "transform": "Scale",
                "max_size": 4,
                "idempotency_key": "tune-1",
            }
            first = app.tune(dict(payload))
            second = app.tune(dict(payload))
            assert first["job"] == second["job"]
            assert (first["deduped"], second["deduped"]) == (False, True)
            assert app.sink.counters["serve.tune_jobs"] == 1
        finally:
            app.close()


# ---------------------------------------------------------------------------
# dropped connections in the HTTP handler (the crash-loop fix)


class TestConnDropHandling:
    def _bare_handler(self, app):
        handler_cls = type("_TestHandler", (_Handler,), {"app": app})
        handler = object.__new__(handler_cls)
        handler.close_connection = False
        handler.send_response = lambda *a, **k: None
        handler.send_header = lambda *a, **k: None
        handler.end_headers = lambda: None
        return handler

    def test_reply_swallows_broken_pipe(self):
        app = _app()
        try:
            handler = self._bare_handler(app)

            class _DeadSocket:
                def write(self, data):
                    raise BrokenPipeError("peer went away")

                def flush(self):
                    pass

            handler.wfile = _DeadSocket()
            handler._reply(200, {"ok": True})  # must not raise
            assert handler.close_connection is True
            assert app.sink.counters["serve.conn_dropped"] == 1
        finally:
            app.close()

    def test_reply_swallows_connection_reset(self):
        app = _app()
        try:
            handler = self._bare_handler(app)

            class _ResetSocket:
                def write(self, data):
                    raise ConnectionResetError("reset by peer")

                def flush(self):
                    pass

            handler.wfile = _ResetSocket()
            handler._reply(500, {"error": "boom"})
            assert app.sink.counters["serve.conn_dropped"] == 1
        finally:
            app.close()
