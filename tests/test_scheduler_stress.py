"""Invariant-checking stress tests for the work-stealing scheduler.

The harness (:mod:`repro.observe.stress`) generates seeded random task
graphs and asserts, for every run: no deadlock, exactly-once execution,
trace determinism, zero steals on one worker, work conservation, and
the greedy bound ``makespan <= T1'/P + c*Tinf'``.  The big sweep below
covers >= 200 seeded graphs across all shapes, machines, and worker
counts — the regression baseline every scheduler change must keep green.
"""

import pytest

from repro.observe import (
    SHAPES,
    TraceSink,
    augmented_span,
    check_invariants,
    random_task_graph,
)
from repro.runtime import MACHINES, Machine, TaskRecorder, WorkStealingScheduler

FAST = Machine(
    name="fast", cores=8, cycle_time=1.0, spawn_time=0.0, steal_time=0.0
)
MACHINE_POOL = (
    FAST,
    MACHINES["xeon8"],
    MACHINES["mobile"],
    MACHINES["niagara"],
)
WORKER_POOL = (1, 2, 4, 8)


class TestGraphGenerator:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_shapes_produce_valid_graphs(self, shape):
        for seed in range(5):
            graph = random_task_graph(seed, shape)
            graph.validate()  # raises on malformed graphs
            assert len(graph) >= 1
            assert graph.total_work() >= 0.0

    def test_same_seed_same_graph(self):
        a = random_task_graph(42, "random")
        b = random_task_graph(42, "random")
        assert len(a) == len(b)
        assert [
            (t.tid, t.work, t.deps, t.parent, t.spawns) for t in a.tasks
        ] == [(t.tid, t.work, t.deps, t.parent, t.spawns) for t in b.tasks]

    def test_seed_picks_shape_when_unspecified(self):
        graph = random_task_graph(3)
        graph.validate()

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError):
            random_task_graph(0, "moebius")

    def test_respects_task_budget(self):
        for seed in range(10):
            assert len(random_task_graph(seed, "random", max_tasks=20)) <= 20


class TestInvariantsPerShape:
    """Small per-shape sweeps so a failure names the offending shape."""

    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("workers", (1, 4))
    def test_shape_invariants(self, shape, workers):
        for seed in range(6):
            graph = random_task_graph(seed, shape)
            check_invariants(graph, MACHINES["xeon8"], workers, seed=seed)

    @pytest.mark.parametrize("shape", SHAPES)
    def test_zero_overhead_machine(self, shape):
        for seed in range(4):
            graph = random_task_graph(seed + 100, shape)
            report = check_invariants(graph, FAST, workers=4, seed=seed)
            # with zero overheads busy time is exactly the total work
            assert report.busy_time == pytest.approx(graph.total_work())
            assert report.steal_time == 0.0


def test_stress_sweep_200_seeded_graphs():
    """The CI acceptance gate: >= 200 random graphs, all six invariants."""
    checked = 0
    for seed in range(200):
        shape = SHAPES[seed % len(SHAPES)]
        machine = MACHINE_POOL[seed % len(MACHINE_POOL)]
        workers = WORKER_POOL[(seed // 3) % len(WORKER_POOL)]
        graph = random_task_graph(seed, shape)
        check_invariants(graph, machine, workers, seed=seed)
        checked += 1
    assert checked >= 200


class TestAugmentedSpan:
    def test_chain_span_is_total_duration(self):
        rec = TaskRecorder()
        prev = None
        with rec.task():
            for _ in range(4):
                deps = [prev] if prev is not None else []
                with rec.task(deps=deps) as tid:
                    rec.charge(10)
                prev = tid
        graph = rec.graph()
        # chain of 4 x 10 work after a spawning root; zero overhead and
        # no steal charge -> span equals the full serialized duration
        assert augmented_span(graph, FAST, include_steal=False) == 40.0

    def test_steal_charge_added_per_node(self):
        rec = TaskRecorder()
        with rec.task():
            with rec.task():
                rec.charge(10)
        graph = rec.graph()
        machine = Machine(
            name="m", cores=2, cycle_time=1.0, spawn_time=0.0, steal_time=5.0
        )
        without = augmented_span(graph, machine, include_steal=False)
        with_steal = augmented_span(graph, machine, include_steal=True)
        assert with_steal == without + 2 * 5.0  # root + child, one steal each


class TestDeterminismRegression:
    """Same seed => byte-identical traces across fresh scheduler objects."""

    def test_trace_byte_identical_across_invocations(self):
        graph = random_task_graph(17, "random")
        traces = []
        results = []
        for _ in range(2):
            sink = TraceSink()
            scheduler = WorkStealingScheduler(MACHINES["xeon8"], seed=99)
            results.append(scheduler.run(graph, workers=8, sink=sink))
            traces.append(sink.to_jsonl())
        assert results[0] == results[1]
        assert traces[0] == traces[1]

    def test_different_victim_seed_still_satisfies_invariants(self):
        graph = random_task_graph(23, "fanout")
        for seed in (1, 2, 3):
            check_invariants(graph, MACHINES["mobile"], workers=2, seed=seed)
