"""Tests for symbolic intervals, boxes, and constraint solving."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.symbolic import Affine, Assumptions, Box, Interval, solve_bounds_for
from repro.symbolic.expr import SymbolicCompareError
from repro.symbolic.solve import UnsatisfiableConstraint, solve_equal

n = Affine.var("n")
i = Affine.var("i")
ASM = Assumptions({"n": (1, None)})


class TestInterval:
    def test_point(self):
        iv = Interval.point(i)
        assert iv.lo == i and iv.hi == i + 1

    def test_length(self):
        assert Interval(1, n).length() == n - 1

    def test_emptiness_decidable(self):
        assert Interval(0, 0).is_empty() is True
        assert Interval(0, 1).is_empty() is False
        assert Interval(0, n).is_empty(ASM) is False

    def test_emptiness_undecidable(self):
        assert Interval(0, n).is_empty() is None  # n could be 0

    def test_intersect(self):
        left = Interval(0, n)
        right = Interval(1, n + 1)
        both = left.intersect(right)
        assert both == Interval(1, n)

    def test_intersect_undecidable(self):
        with pytest.raises(SymbolicCompareError):
            Interval(i, n).intersect(Interval(n, i))

    def test_shift(self):
        assert Interval(0, n).shift(1) == Interval(1, n + 1)

    def test_contains(self):
        assert Interval(0, n).contains(Interval(1, n - 1), ASM)
        assert not Interval(1, n).contains(Interval(0, n), ASM)

    def test_contains_empty_always(self):
        assert Interval(5, 6).contains(Interval(3, 3))

    def test_concrete(self):
        assert Interval(1, n).concrete({"n": 10}) == (1, 10)

    def test_concrete_rounds_halfopen(self):
        # [n/2, n): for n=5 integer members are 3,4 -> (3, 5)
        assert Interval(n / 2, n).concrete({"n": 5}) == (3, 5)


class TestBox:
    def test_cell(self):
        box = Box.cell([i, i + 1])
        assert box.ndim == 2
        assert box.intervals[0] == Interval(i, i + 1)

    def test_whole(self):
        box = Box.whole([n, n])
        assert box.intervals == (Interval(0, n), Interval(0, n))

    def test_intersect(self):
        a = Box([(0, n), (0, n)])
        b = Box([(1, n), (0, n - 1)])
        assert a.intersect(b) == Box([(1, n), (0, n - 1)])

    def test_intersect_dim_mismatch(self):
        with pytest.raises(ValueError):
            Box([(0, n)]).intersect(Box([(0, n), (0, n)]))

    def test_shift(self):
        assert Box([(0, n)]).shift([2]) == Box([(2, n + 2)])

    def test_volume(self):
        assert Box([(0, n), (1, n)]).volume({"n": 4}) == 12

    def test_volume_empty_clamps_to_zero(self):
        assert Box([(3, 1)]).volume({}) == 0

    def test_scalar_box(self):
        box = Box([])
        assert box.ndim == 0
        assert box.is_empty() is False
        assert box.volume({}) == 1

    def test_contains(self):
        outer = Box.whole([n, n])
        inner = Box([(1, n - 1), (0, n)])
        assert outer.contains(inner, ASM)
        assert not inner.contains(outer, ASM)

    def test_emptiness_any_dimension(self):
        assert Box([(0, 1), (2, 2)]).is_empty() is True


class TestSolveBounds:
    def test_identity_index(self):
        # 0 <= i < n  =>  i in [0, n)
        assert solve_bounds_for("i", i, 0, n) == Interval(0, n)

    def test_offset_index(self):
        # 0 <= i-1 < n  =>  i in [1, n+1)
        assert solve_bounds_for("i", i - 1, 0, n) == Interval(1, n + 1)

    def test_scaled_index(self):
        # 0 <= 2i < n  =>  i in [0, n/2)
        assert solve_bounds_for("i", i * 2, 0, n) == Interval(0, n / 2)

    def test_negative_coefficient(self):
        # 0 <= n-1-i < n  =>  i in (-1, n-1] = [0, n)
        iv = solve_bounds_for("i", n - 1 - i, 0, n)
        assert iv.concrete({"n": 7}) == (0, 7)

    def test_unconstrained_variable(self):
        assert solve_bounds_for("i", n / 2, 0, n, ASM) is None

    def test_provably_violated(self):
        with pytest.raises(UnsatisfiableConstraint):
            solve_bounds_for("i", Affine.const(-1), 0, n, ASM)

    @given(st.integers(1, 40), st.integers(-3, 3), st.integers(1, 3))
    def test_solution_matches_bruteforce(self, size, offset, scale):
        # constraint: 0 <= scale*i + offset < size
        expr = i * scale + offset
        interval = solve_bounds_for("i", expr, 0, n)
        lo, hi = interval.concrete({"n": size})
        expected = [
            v for v in range(-10, size + 10) if 0 <= scale * v + offset < size
        ]
        got = [v for v in range(lo, hi)]
        assert got == expected

    @given(st.integers(1, 40), st.integers(-3, 3), st.integers(1, 3))
    def test_solution_matches_bruteforce_negative_scale(self, size, offset, scale):
        # constraint: 0 <= -scale*i + offset + n < size; the negative-
        # coefficient branch flips strict/inclusive bounds, and for
        # |scale| > 1 the half-open conversion must shift by the exact
        # 1/lcm step (a flat +1 used to admit an extra instance).
        expr = i * (-scale) + offset + n
        interval = solve_bounds_for("i", expr, 0, n)
        lo, hi = interval.concrete({"n": size})
        expected = [
            v
            for v in range(-60, size + 60)
            if 0 <= -scale * v + offset + size < size
        ]
        assert [v for v in range(lo, hi)] == expected


class TestSolveEqual:
    def test_simple(self):
        assert solve_equal("i", i + 1, n) == n - 1

    def test_scaled(self):
        assert solve_equal("i", 2 * i, n) == n / 2

    def test_var_cancels(self):
        assert solve_equal("i", i + 1, i + 1) is None
