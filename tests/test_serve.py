"""Tests for the compile-and-serve daemon (``repro serve``).

Covers the serve registry (versioning, bucket fallback, cold/warm
accounting), the transport-independent :class:`ServeApp` endpoints,
concurrency (many threads against one registry entry, version bumps
racing in-flight runs), restart recovery from the artifact store, the
HTTP round trip, byte-parity between served batches and the direct
``repro batch`` CLI, and a 10k-request soak that pins down bounded
memory in the long-lived per-program engine.
"""

import json
import threading

import numpy as np
import pytest

from repro.cli import main
from repro.compiler import ChoiceConfig
from repro.serve import (
    ANY_BUCKET,
    ArtifactStore,
    ServeApp,
    ServeClient,
    ServeClientError,
    ServeDaemon,
    ServeError,
    ServeRegistry,
    bucket_for,
    program_digest,
    size_bucket,
)

SCALE = """
transform Scale
from A[n, m]
to B[n, m]
{
  to (B.cell(x, y) b) from (A.cell(x, y) a) { b = a * 2.0 + 1.0; }
}
"""


def _config(leaf=0, salt=None):
    config = ChoiceConfig()
    config.set_tunable("Scale.__leaf_path__", leaf)
    if salt is not None:
        config.set_tunable("Scale.__salt__", salt)
    return config


@pytest.fixture()
def app():
    application = ServeApp()
    yield application
    application.close()


@pytest.fixture()
def phash(app):
    return app.compile({"source": SCALE})["program"]


# ---------------------------------------------------------------------------
# registry


class TestBuckets:
    def test_power_of_two_ceilings(self):
        assert size_bucket(0) == "b1"
        assert size_bucket(1) == "b1"
        assert size_bucket(2) == "b2"
        assert size_bucket(3) == "b4"
        assert size_bucket(16) == "b16"
        assert size_bucket(17) == "b32"

    def test_bucket_for_takes_largest_extent(self):
        assert bucket_for([(2, 3), (5,)]) == "b8"
        assert bucket_for([(2, 2)], sizes={"n": 12}) == "b16"
        assert bucket_for([]) == "b1"


class TestRegistry:
    def test_program_digest_is_content_addressed(self):
        assert program_digest(SCALE) == program_digest(SCALE)
        assert program_digest(SCALE) != program_digest(SCALE + " ")

    def test_compile_once(self):
        registry = ServeRegistry()
        entry1, cached1 = registry.register_program(SCALE)
        entry2, cached2 = registry.register_program(SCALE)
        assert entry1 is entry2
        assert (cached1, cached2) == (False, True)

    def test_publish_bumps_version_and_precomputes_digest(self):
        registry = ServeRegistry()
        first = registry.publish("p", "xeon8", "b4", _config(0))
        second = registry.publish("p", "xeon8", "b4", _config(1))
        assert (first.version, second.version) == (1, 2)
        assert first.digest != second.digest
        assert registry.peek("p", "xeon8", "b4").version == 2

    def test_lookup_falls_back_to_any_bucket(self):
        registry = ServeRegistry()
        registry.publish("p", "xeon8", ANY_BUCKET, _config(0))
        registry.publish("p", "xeon8", "b4", _config(1))
        assert registry.lookup("p", "xeon8", "b4").version == 1
        assert (
            registry.lookup("p", "xeon8", "b64").config.tunables[
                "Scale.__leaf_path__"
            ]
            == 0
        )
        assert registry.lookup("p", "other", "b4") is None

    def test_cold_start_vs_warm_hit_counters(self, app, phash):
        # One compile, then a cached registration (warm program hit).
        app.compile({"source": SCALE})
        counters = app.sink.counters
        assert counters["serve.compiles"] == 1
        assert counters["serve.program_hits"] == 1

        # Config lookups: miss while unpublished, hit after publish.
        payload = {
            "program": phash,
            "transform": "Scale",
            "inputs": {"A": [[1.0, 2.0], [3.0, 4.0]]},
        }
        assert app.run(payload)["meta"]["registry_hit"] is False
        assert counters["serve.config_misses"] == 1
        app.publish_config(phash, "xeon8", ANY_BUCKET, _config(0))
        assert app.run(payload)["meta"]["registry_hit"] is True
        assert counters["serve.config_hits"] == 1
        assert counters["serve.version_bumps"] == 1


# ---------------------------------------------------------------------------
# app endpoints


class TestServeApp:
    def test_run_executes_and_reports_bucket(self, app, phash):
        response = app.run(
            {
                "program": phash,
                "transform": "Scale",
                "inputs": {"A": [[1.0, 2.0], [3.0, 4.0]]},
            }
        )
        np.testing.assert_allclose(
            response["outputs"]["B"], [[3.0, 5.0], [7.0, 9.0]]
        )
        meta = response["meta"]
        assert meta["bucket"] == "b2"
        assert meta["version"] is None and meta["registry_hit"] is False

    def test_run_reports_registry_version(self, app, phash):
        app.publish_config(phash, "xeon8", "b2", _config(0))
        meta = app.run(
            {
                "program": phash,
                "transform": "Scale",
                "inputs": {"A": [[1.0, 2.0], [3.0, 4.0]]},
            }
        )["meta"]
        assert meta["version"] == 1 and meta["registry_hit"] is True

    def test_unknown_program_is_404(self, app):
        with pytest.raises(ServeError) as excinfo:
            app.run({"program": "beef", "transform": "Scale", "inputs": []})
        assert excinfo.value.status == 404

    def test_batch_strict_reports_line_number(self, app, phash):
        lines = [
            json.dumps({"transform": "Scale", "inputs": {"A": [[1.0]]}}),
            "not json at all",
        ]
        with pytest.raises(ServeError) as excinfo:
            app.batch({"program": phash, "lines": lines, "strict": True})
        assert excinfo.value.status == 400
        assert "request line 2" in excinfo.value.message

    def test_batch_nonstrict_interleaves_malformed_records(self, app, phash):
        lines = [
            json.dumps({"transform": "Scale", "inputs": {"A": [[1.0]]}}),
            "not json at all",
            json.dumps({"transform": "Scale", "inputs": {"A": [[2.0]]}}),
        ]
        response = app.batch({"program": phash, "lines": lines})
        records = response["results"]
        assert [record["ok"] for record in records] == [True, False, True]
        assert records[1]["line"] == 2
        # Request ids are renumbered from 0 per call, exactly like a
        # fresh CLI invocation, even though the engine is long-lived.
        assert [records[0]["id"], records[2]["id"]] == [0, 1]
        second = app.batch({"program": phash, "lines": lines})
        assert [r["id"] for r in second["results"] if r["ok"]] == [0, 1]

    def test_tune_job_publishes_version(self, app, phash):
        job_id = app.tune(
            {
                "program": phash,
                "transform": "Scale",
                "max_size": 16,
                "min_size": 16,
                "population": 4,
                "bucket": "b2",
            }
        )["job"]
        snapshot = app.jobs.wait(job_id, timeout=120.0)
        assert snapshot["state"] == "done", snapshot.get("error")
        assert snapshot["result"]["version"] == 1
        entry = app.registry.peek(phash, "xeon8", "b2")
        assert entry.version == 1
        assert entry.digest == snapshot["result"]["digest"]


# ---------------------------------------------------------------------------
# concurrency


class TestConcurrency:
    def test_many_threads_one_entry(self, app, phash):
        app.publish_config(phash, "xeon8", ANY_BUCKET, _config(0))
        errors = []
        results = []

        def worker(value):
            payload = {
                "program": phash,
                "transform": "Scale",
                "inputs": {"A": [[float(value)]]},
            }
            try:
                for _ in range(5):
                    response = app.run(payload)
                    results.append(
                        (value, response["outputs"]["B"][0][0])
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(v,)) for v in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(results) == 40
        for value, output in results:
            assert output == value * 2.0 + 1.0

    def test_version_bump_races_inflight_runs(self, app, phash):
        """Runs racing a publish see either the old or the new version,
        never a torn state, and the final request sees the new one."""
        app.publish_config(phash, "xeon8", ANY_BUCKET, _config(0))
        seen = []
        stop = threading.Event()

        def runner():
            payload = {
                "program": phash,
                "transform": "Scale",
                "inputs": {"A": [[1.0, 2.0], [3.0, 4.0]]},
            }
            while not stop.is_set():
                meta = app.run(payload)["meta"]
                seen.append(meta["version"])

        thread = threading.Thread(target=runner)
        thread.start()
        try:
            app.publish_config(phash, "xeon8", ANY_BUCKET, _config(1))
        finally:
            stop.set()
            thread.join()
        final = app.run(
            {
                "program": phash,
                "transform": "Scale",
                "inputs": {"A": [[1.0, 2.0], [3.0, 4.0]]},
            }
        )["meta"]
        assert set(seen) <= {1, 2}
        assert final["version"] == 2 and final["registry_hit"] is True

    def test_in_flight_entry_survives_bump(self, app, phash):
        """A handler that already resolved v1 keeps a usable immutable
        snapshot even after v2 replaces it in the registry."""
        app.publish_config(phash, "xeon8", ANY_BUCKET, _config(0))
        held = app.registry.lookup(phash, "xeon8", ANY_BUCKET)
        app.publish_config(phash, "xeon8", ANY_BUCKET, _config(1))
        assert held.version == 1
        assert held.config.tunables["Scale.__leaf_path__"] == 0
        entry = app.registry.program(phash)
        transform = entry.program.transform("Scale")
        result = transform.run(
            {"A": np.array([[1.0]])}, held.config
        )
        np.testing.assert_allclose(result.outputs["B"].data, [[3.0]])


# ---------------------------------------------------------------------------
# store + recovery


class TestRecovery:
    def test_restart_recovers_programs_and_configs(self, tmp_path):
        store = str(tmp_path / "store")
        first = ServeApp(store_dir=store)
        phash = first.compile({"source": SCALE})["program"]
        first.publish_config(phash, "xeon8", "b2", _config(0))
        first.publish_config(phash, "xeon8", "b2", _config(1))  # v2
        first.close()

        second = ServeApp(store_dir=store)
        try:
            assert second.recovered["programs"] == 1
            assert second.recovered["configs"] == 1
            entry = second.registry.peek(phash, "xeon8", "b2")
            assert entry.version == 2  # version survives the restart
            assert entry.origin == "store"
            meta = second.run(
                {
                    "program": phash,
                    "transform": "Scale",
                    "inputs": {"A": [[1.0, 2.0], [3.0, 4.0]]},
                }
            )["meta"]
            assert meta["registry_hit"] is True and meta["version"] == 2
            # The next publish continues the version sequence.
            bumped = second.publish_config(phash, "xeon8", "b2", _config(2))
            assert bumped.version == 3
        finally:
            second.close()

    def test_corrupt_config_artifact_is_skipped(self, tmp_path):
        store_dir = str(tmp_path / "store")
        first = ServeApp(store_dir=store_dir)
        phash = first.compile({"source": SCALE})["program"]
        first.publish_config(phash, "xeon8", "b2", _config(0))
        first.close()

        victim = next((tmp_path / "store" / "configs").rglob("b2.json"))
        victim.write_text("{ this is not json")
        second = ServeApp(store_dir=store_dir)
        try:
            assert second.recovered["programs"] == 1
            assert second.recovered["skipped"] >= 1
            assert second.registry.peek(phash, "xeon8", "b2") is None
            # The daemon still serves the recovered program.
            response = second.run(
                {
                    "program": phash,
                    "transform": "Scale",
                    "inputs": {"A": [[2.0]]},
                }
            )
            np.testing.assert_allclose(response["outputs"]["B"], [[5.0]])
        finally:
            second.close()

    def test_store_writes_are_atomic_files(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        store.save_program("cafe", SCALE, {"transforms": ["Scale"]})
        store.save_config("cafe", "xeon8", "b2", _config(0), meta={"version": 1})
        leftovers = [
            path
            for path in (tmp_path / "store").rglob("*")
            if path.is_file() and path.suffix not in (".json", ".pbcc")
        ]
        assert leftovers == []  # no temp files left behind
        assert dict(store.load_programs())["cafe"] == SCALE


# ---------------------------------------------------------------------------
# HTTP round trip


class TestHTTP:
    @pytest.fixture()
    def daemon(self):
        server = ServeDaemon(ServeApp(), port=0).start_background()
        yield server
        server.stop()

    @pytest.fixture()
    def client(self, daemon):
        return ServeClient(port=daemon.port, timeout=30.0)

    def test_round_trip(self, client):
        assert client.health()["ok"] is True
        phash = client.compile(SCALE)["program"]
        # ensure_program resolves without re-sending the source.
        assert client.ensure_program(SCALE) == phash
        response = client.run(
            phash, "Scale", {"A": [[1.0, 2.0], [3.0, 4.0]]}
        )
        assert response["outputs"]["B"] == [[3.0, 5.0], [7.0, 9.0]]
        batch = client.batch(
            phash,
            [json.dumps({"transform": "Scale", "inputs": {"A": [[1.0]]}})],
        )
        assert batch["failed"] == 0
        assert batch["results"][0]["outputs"]["B"] == [[3.0]]
        stats = client.stats()
        assert stats["counters"]["serve.compiles"] == 1

    def test_errors_carry_status(self, client):
        with pytest.raises(ServeClientError) as excinfo:
            client.run("no-such-hash", "Scale", [])
        assert excinfo.value.status == 404
        with pytest.raises(ServeClientError) as excinfo:
            client.request("GET", "/no/such/route")
        assert excinfo.value.status == 404

    def test_shutdown_route_stops_server(self):
        daemon = ServeDaemon(ServeApp(), port=0).start_background()
        client = ServeClient(port=daemon.port, timeout=30.0)
        assert client.shutdown()["state"] == "draining"
        daemon._thread.join(timeout=5.0)
        assert not daemon._thread.is_alive()


# ---------------------------------------------------------------------------
# byte parity with the direct CLI


class TestByteParity:
    def test_served_batch_matches_cli_bytes(self, app, phash, tmp_path):
        lines = [
            json.dumps({"transform": "Scale", "inputs": {"A": [[1.0, 2.0]]}}),
            json.dumps({"transform": "Scale", "inputs": {"A": [[5.0, 6.0]]}}),
            "not json at all",
            json.dumps({"transform": "Nope", "inputs": {}}),
        ]
        source_path = tmp_path / "scale.pbcc"
        source_path.write_text(SCALE)
        requests_path = tmp_path / "reqs.jsonl"
        requests_path.write_text("\n".join(lines) + "\n")
        direct_path = tmp_path / "direct.jsonl"
        assert (
            main(
                [
                    "batch",
                    str(source_path),
                    str(requests_path),
                    "-o",
                    str(direct_path),
                ]
            )
            == 0
        )

        response = app.batch({"program": phash, "lines": lines})
        served = "".join(
            json.dumps(record, sort_keys=True) + "\n"
            for record in response["results"]
        )
        assert served == direct_path.read_text()

    def test_parity_survives_warm_engine(self, app, phash, tmp_path):
        """A second served batch on the (now warm) engine still emits
        the exact bytes a fresh CLI process would."""
        lines = [
            json.dumps({"transform": "Scale", "inputs": {"A": [[3.0]]}}),
        ]
        source_path = tmp_path / "scale.pbcc"
        source_path.write_text(SCALE)
        requests_path = tmp_path / "reqs.jsonl"
        requests_path.write_text("\n".join(lines) + "\n")
        direct_path = tmp_path / "direct.jsonl"
        main(["batch", str(source_path), str(requests_path), "-o", str(direct_path)])

        app.batch({"program": phash, "lines": lines})  # warm the engine
        response = app.batch({"program": phash, "lines": lines})
        served = "".join(
            json.dumps(record, sort_keys=True) + "\n"
            for record in response["results"]
        )
        assert served == direct_path.read_text()


# ---------------------------------------------------------------------------
# soak: bounded memory in a long-lived daemon


class TestSoak:
    def test_10k_requests_bounded_memory(self, app, phash):
        """10k served requests across 100 distinct inline configs leave
        the per-program engine's plan cache bounded and the registry
        unchanged — the daemon does not accumulate per-request state."""
        lines = [
            json.dumps({"transform": "Scale", "inputs": {"A": [[1.0, 2.0]]}})
            for _ in range(100)
        ]
        entry = app.registry.program(phash)
        registry_size = len(app.registry._configs)
        for round_number in range(100):
            config = json.loads(_config(0, salt=round_number).to_json())
            response = app.batch(
                {"program": phash, "lines": lines, "config": config}
            )
            assert response["failed"] == 0
        assert app.sink.counters["serve.batch_requests"] == 10_000
        assert len(entry.engine._plans) <= entry.engine.plan_cache_size
        assert len(app.registry._configs) == registry_size
        # The fixed digest memo of old (id-keyed, append-only) is gone.
        assert not hasattr(entry.engine, "_digests")
