"""Tests for the remaining language/compiler features: template
transforms, generator declarations, configuration files (including
size-leveled tunables), and static specialization."""

import numpy as np
import pytest

from repro.autotuner import Evaluator
from repro.autotuner.evaluation import generator_inputs
from repro.compiler import ChoiceConfig, Selector, compile_program
from repro.compiler.codegen import dead_choice_report, specialize
from repro.language.errors import CompileError
from repro.runtime import MACHINES

TEMPLATED = """
transform Scale template <FACTOR, 1, 100>
from A[n]
to B[n]
{
  to (B.cell(i) b) from (A.cell(i) a) { b = a * FACTOR; }
}
"""

WITH_GENERATOR = """
transform RandomInput
to R[n]
{
  to (R.cell(i) r) from () { r = rand(); }
}

transform Sum
from A[n]
to S
generator RandomInput
{
  to (S s) from (A a) { s = sum(a); }
}
"""


class TestTemplates:
    def test_instantiation_creates_named_instances(self):
        program = compile_program(TEMPLATED, template_values={"Scale": [2, 10]})
        assert set(program.transforms) == {"Scale_2", "Scale_10"}

    def test_instances_compute_with_their_value(self):
        program = compile_program(TEMPLATED, template_values={"Scale": [3]})
        result = program.transform("Scale_3").run([np.array([1.0, 2.0])])
        np.testing.assert_allclose(result.output("B"), [3.0, 6.0])

    def test_instances_have_independent_choice_sites(self):
        program = compile_program(TEMPLATED, template_values={"Scale": [2, 4]})
        sites_2 = [k for k, _ in program.transform("Scale_2").choice_sites()]
        sites_4 = [k for k, _ in program.transform("Scale_4").choice_sites()]
        assert sites_2 != sites_4

    def test_uninstantiated_template_not_compiled(self):
        program = compile_program(TEMPLATED)
        assert not program.transforms

    def test_out_of_range_value_rejected(self):
        with pytest.raises(CompileError):
            compile_program(TEMPLATED, template_values={"Scale": [500]})


class TestGenerator:
    def test_generator_produces_inputs(self):
        program = compile_program(WITH_GENERATOR)
        gen = generator_inputs(program, "Sum")
        import random

        inputs = gen(16, random.Random(1))
        assert len(inputs) == 1 and inputs[0].shape == (16,)
        assert np.all((inputs[0] >= 0) & (inputs[0] < 1))

    def test_generator_varies_with_rng(self):
        program = compile_program(WITH_GENERATOR)
        gen = generator_inputs(program, "Sum")
        import random

        a = gen(8, random.Random(1))[0]
        b = gen(8, random.Random(2))[0]
        assert not np.allclose(a, b)

    def test_generator_feeds_evaluator(self):
        program = compile_program(WITH_GENERATOR)
        evaluator = Evaluator(
            program, "Sum", generator_inputs(program, "Sum"), MACHINES["xeon1"]
        )
        assert evaluator.time(ChoiceConfig(), 32) > 0

    def test_missing_generator_rejected(self):
        program = compile_program(WITH_GENERATOR)
        with pytest.raises(ValueError):
            generator_inputs(program, "RandomInput")


SORTISH = """
transform Reverse
from A[n]
to B[n]
{
  to (B.cell(i) b) from (A.cell(n - 1 - i) a) { b = a; }
  to (B.cell(i) b) from (A.cell(n - 1 - i) a) { b = a + 0; }
}
"""


class TestSpecialization:
    def test_static_program_ignores_runtime_config(self):
        program = compile_program(SORTISH)
        frozen = ChoiceConfig()
        frozen.set_choice("Reverse.B.0", Selector.static(1))
        static = specialize(program, frozen)
        # Passing a different config at run time must have no effect.
        override = ChoiceConfig()
        override.set_choice("Reverse.B.0", Selector.static(0))
        result = static.transform("Reverse").run([np.arange(4.0)], override)
        np.testing.assert_allclose(result.output("B"), [3, 2, 1, 0])

    def test_dead_choice_report(self):
        program = compile_program(SORTISH)
        config = ChoiceConfig()
        config.set_choice("Reverse.B.0", Selector.static(0))
        report = dead_choice_report(program, config)
        assert report == {"Reverse.B.0": ["rule1"]}

    def test_multilevel_selector_keeps_both(self):
        program = compile_program(SORTISH)
        config = ChoiceConfig()
        config.set_choice("Reverse.B.0", Selector(((64, 0), (None, 1))))
        assert dead_choice_report(program, config) == {}


class TestLeveledTunables:
    def test_leveled_shadows_flat(self):
        config = ChoiceConfig()
        config.set_tunable("T.iters", 5)
        config.set_leveled_tunable(
            "T.iters", Selector(((100, 10), (None, 20)))
        )
        assert config.tunable_at("T.iters", 50, 1) == 10
        assert config.tunable_at("T.iters", 500, 1) == 20

    def test_flat_fallback(self):
        config = ChoiceConfig()
        config.set_tunable("T.iters", 5)
        assert config.tunable_at("T.iters", 50, 1) == 5
        assert config.tunable_at("T.other", 50, 7) == 7

    def test_json_roundtrip_with_levels(self):
        config = ChoiceConfig()
        config.set_choice("T.Y.0", Selector(((10, 0), (None, 2))))
        config.set_tunable("T.k", 3)
        config.set_leveled_tunable("T.iters", Selector(((8, 4), (None, 9))))
        restored = ChoiceConfig.from_json(config.to_json())
        assert restored.choice_for("T.Y.0").pick(50) == 2
        assert restored.tunable("T.k", 0) == 3
        assert restored.tunable_at("T.iters", 4, 0) == 4
        assert restored.tunable_at("T.iters", 800, 0) == 9

    def test_merged_with_keeps_levels(self):
        base = ChoiceConfig()
        base.set_leveled_tunable("T.iters", Selector.static(4))
        other = ChoiceConfig()
        merged = base.merged_with(other)
        assert merged.tunable_at("T.iters", 10, 0) == 4
