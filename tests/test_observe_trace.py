"""Tests for the observability layer: sink, histograms, JSONL export,
and the event streams emitted by the recorder, scheduler, and autotuner."""

import json

import pytest

from repro.observe import Histogram, TraceSink, load_jsonl
from repro.runtime import (
    MACHINES,
    Machine,
    TaskRecorder,
    WorkStealingScheduler,
)

FAST = Machine(
    name="fast", cores=4, cycle_time=1.0, spawn_time=0.0, steal_time=0.0
)


def fanout_graph(count=6, work=10.0, sink=None):
    rec = TaskRecorder(sink=sink)
    with rec.task(label="root"):
        for k in range(count):
            with rec.task(label=f"leaf{k}"):
                rec.charge(work)
    return rec.graph()


class TestHistogram:
    def test_power_of_two_buckets(self):
        hist = Histogram()
        for value in (0, 1, 2, 3, 4, 5, 100):
            hist.observe(value)
        # 0,1 -> bucket 0; 2 -> 1; 3,4 -> 2; 5 -> 3; 100 -> 7
        assert hist.buckets == {0: 2, 1: 1, 2: 2, 3: 1, 7: 1}

    def test_stats(self):
        hist = Histogram()
        for value in (2.0, 4.0, 6.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.mean == pytest.approx(4.0)
        assert hist.min == 2.0 and hist.max == 6.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Histogram().observe(-1.0)

    def test_empty_summary(self):
        summary = Histogram().summary()
        assert summary["count"] == 0
        assert summary["min"] is None and summary["max"] is None


class TestTraceSink:
    def test_counters_and_events(self):
        sink = TraceSink()
        sink.count("x")
        sink.count("x", 4)
        sink.emit("ping", t=1.0, value=3)
        assert sink.counter("x") == 5
        assert sink.counter("missing") == 0
        assert sink.events_of("ping") == [{"kind": "ping", "t": 1.0, "value": 3}]

    def test_capture_events_off_keeps_metrics(self):
        sink = TraceSink(capture_events=False)
        sink.emit("ping", t=0.0)
        sink.count("x")
        sink.observe("h", 2.0)
        assert sink.events == []
        assert sink.counter("x") == 1
        assert sink.histograms["h"].count == 1

    def test_jsonl_roundtrip(self, tmp_path):
        sink = TraceSink()
        sink.emit("a", t=0.0, n=1)
        sink.emit("b", t=1.5, label="x")
        path = str(tmp_path / "trace.jsonl")
        assert sink.write_jsonl(path) == 2
        events = load_jsonl(path)
        assert events == sink.events
        for line in sink.jsonl_lines():
            json.loads(line)  # every line is standalone JSON

    def test_clear(self):
        sink = TraceSink()
        sink.emit("a")
        sink.count("c")
        sink.observe("h", 1)
        sink.clear()
        assert sink.summary() == {"events": 0, "counters": {}, "histograms": {}}


class TestRecorderEvents:
    def test_task_recorded_events(self):
        sink = TraceSink()
        fanout_graph(count=3, sink=sink)
        recorded = sink.events_of("task_recorded")
        assert [e["task"] for e in recorded] == [0, 1, 2, 3]
        assert recorded[0]["parent"] is None
        assert all(e["parent"] == 0 for e in recorded[1:])
        assert sink.counter("recorder.tasks") == 4

    def test_inline_counted_not_recorded(self):
        sink = TraceSink()
        rec = TaskRecorder(sink=sink)
        with rec.task():
            with rec.task(inline=True):
                rec.charge(5)
        assert sink.counter("recorder.inlined") == 1
        assert sink.counter("recorder.tasks") == 1


class TestSchedulerEvents:
    def test_event_schema(self):
        graph = fanout_graph()
        sink = TraceSink()
        result = WorkStealingScheduler(FAST, sink=sink).run(graph, workers=2)
        kinds = [e["kind"] for e in sink.events]
        assert kinds[0] == "run_begin"
        assert kinds[-1] == "run_end"
        starts = sink.events_of("task_start")
        finishes = sink.events_of("task_finish")
        assert len(starts) == len(finishes) == len(graph)
        assert {e["task"] for e in starts} == set(range(len(graph)))
        for event in starts:
            assert set(event) == {"kind", "t", "worker", "task", "label"}
        end = sink.events_of("run_end")[0]
        assert end["makespan"] == result.makespan
        assert end["steals"] == result.steals

    def test_steal_events_match_result(self):
        graph = fanout_graph(count=16)
        sink = TraceSink()
        result = WorkStealingScheduler(MACHINES["xeon8"], sink=sink).run(graph)
        assert len(sink.events_of("steal")) == result.steals
        for event in sink.events_of("steal"):
            assert event["thief"] != event["victim"]

    def test_idle_busy_transitions_pair_up(self):
        graph = fanout_graph(count=8)
        sink = TraceSink()
        WorkStealingScheduler(FAST, sink=sink).run(graph, workers=3)
        for worker in range(3):
            states = [
                e["kind"]
                for e in sink.events
                if e["kind"] in ("idle", "busy") and e["worker"] == worker
            ]
            # strictly alternating, starting busy (workers begin idle)
            for a, b in zip(states, states[1:]):
                assert a != b
            if states:
                assert states[0] == "busy"

    def test_tracing_does_not_perturb_schedule(self):
        graph = fanout_graph(count=12, work=7.0)
        machine = MACHINES["niagara"]
        bare = WorkStealingScheduler(machine, seed=5).run(graph, workers=4)
        sink = TraceSink()
        traced = WorkStealingScheduler(machine, seed=5).run(
            graph, workers=4, sink=sink
        )
        assert bare == traced

    def test_run_sink_overrides_instance_sink(self):
        graph = fanout_graph()
        instance_sink = TraceSink()
        run_sink = TraceSink()
        WorkStealingScheduler(FAST, sink=instance_sink).run(
            graph, workers=2, sink=run_sink
        )
        assert instance_sink.events == []
        assert run_sink.events_of("run_begin")

    def test_deque_depth_histogram_recorded(self):
        sink = TraceSink()
        WorkStealingScheduler(FAST, sink=sink).run(fanout_graph(), workers=2)
        assert sink.histograms["scheduler.deque_depth"].count > 0
        assert sink.histograms["scheduler.task_duration"].count == 7
